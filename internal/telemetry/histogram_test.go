package telemetry

import (
	"math"
	"math/rand"
	"testing"

	"rocc/internal/stats"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketIndex(v)
		low := bucketLow(i)
		var high uint64
		if i+1 < numBuckets {
			high = bucketLow(i+1) - 1
		} else {
			high = ^uint64(0)
		}
		if v < low || v > high {
			t.Errorf("value %d filed in bucket %d covering [%d,%d]", v, i, low, high)
		}
	}
	// Buckets are contiguous and monotone.
	for i := 1; i < numBuckets; i++ {
		if bucketLow(i) <= bucketLow(i-1) {
			t.Fatalf("bucketLow not monotone at %d", i)
		}
	}
}

func TestHistogramExactBelowSubBuckets(t *testing.T) {
	h := newHistogram()
	for v := int64(0); v < subBuckets; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != subBuckets || s.Min != 0 || s.Max != subBuckets-1 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Small values are recorded exactly, so the nearest-rank median is
	// exact: the 16th smallest of 0..31 is 15.
	if s.P50 != subBuckets/2-1 {
		t.Errorf("p50 = %d, want %d", s.P50, subBuckets/2-1)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := newHistogram()
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 {
		t.Errorf("negative observation mishandled: %+v", s)
	}
}

// TestHistogramPercentilesAgainstStats cross-checks bucketed percentiles
// with the exact interpolated percentiles of internal/stats on known
// distributions. The histogram's relative quantization error is bounded
// by 2^-subBits plus the bucket-midpoint rounding, so 2/subBuckets is a
// safe tolerance.
func TestHistogramPercentilesAgainstStats(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform":     func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exponential": func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"lognormal":   func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*1.5 + 8)) },
	}
	for name, draw := range distributions {
		r := rand.New(rand.NewSource(42))
		h := newHistogram()
		xs := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			v := draw(r)
			h.Observe(v)
			xs = append(xs, float64(v))
		}
		s := h.Snapshot()
		for _, q := range []struct {
			p    float64
			got  uint64
			name string
		}{
			{50, s.P50, "p50"}, {95, s.P95, "p95"}, {99, s.P99, "p99"},
		} {
			want := stats.Percentile(xs, q.p)
			if want == 0 {
				continue
			}
			rel := math.Abs(float64(q.got)-want) / want
			if rel > 2.0/subBuckets {
				t.Errorf("%s %s = %d, stats says %.0f (rel err %.3f)", name, q.name, q.got, want, rel)
			}
		}
		if s.Max != uint64(stats.Percentile(xs, 100)) {
			t.Errorf("%s max = %d, want %.0f", name, s.Max, stats.Percentile(xs, 100))
		}
		wantMean := stats.Mean(xs)
		if math.Abs(s.Mean-wantMean)/wantMean > 1e-9 {
			t.Errorf("%s mean = %v, want %v (sum is exact, not bucketed)", name, s.Mean, wantMean)
		}
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := newHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}
