package telemetry

import (
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Error("re-registering a counter did not return the same instance")
	}
	g := r.Gauge("a.gauge")
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Errorf("gauge = %v, want 3.25", g.Value())
	}
	r.GaugeFunc("a.func", func() float64 { return 42 })
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry handed out a real counter")
	}
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge stored")
	}
	h := r.Histogram("x")
	h.Observe(5)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram recorded")
	}
	r.GaugeFunc("x", func() float64 { return 1 })
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var rec *Recorder
	rec.Record(Event{})
	if rec.Total() != 0 || rec.Events() != nil || rec.FlowEvents(1) != nil || rec.Flows() != nil {
		t.Error("nil recorder not inert")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("z").Set(9)
	r.GaugeFunc("y", func() float64 { return 8 })
	r.Histogram("h").Observe(100)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if s.Counters[0].Value != 2 {
		t.Errorf("counter a = %v", s.Counters[0].Value)
	}
	if len(s.Gauges) != 2 || s.Gauges[0].Name != "y" || s.Gauges[0].Value != 8 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a", "b", "y", "z", "h", "count=1"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text snapshot missing %q:\n%s", want, sb.String())
		}
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := New()
	v := 1.0
	r.GaugeFunc("live", func() float64 { return v })
	v = 7
	s := r.Snapshot()
	if s.Gauges[0].Value != 7 {
		t.Errorf("gauge func = %v, want 7 (must evaluate lazily)", s.Gauges[0].Value)
	}
}
