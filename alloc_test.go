// Allocation-regression gate for the zero-allocation hot path: once the
// event free list and the packet pool are primed, steady-state stepping
// of the saturated-link topology (the BenchmarkEnginePacketEvents
// workload) must not allocate. The gate is ≤1 alloc/event to absorb
// incidental runtime noise; the measured value is 0.
package rocc_test

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
	"rocc/internal/topology"
)

func TestSteadyStateStepAllocs(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	c := net.AddHost("c")
	net.Connect(a, sw, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.Connect(sw, c, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.ComputeRoutes()
	net.StartFlow(a, c, netsim.FlowConfig{Size: -1})

	// Prime the pipeline: packet pool, event free list, heap capacity.
	for i := 0; i < 200_000; i++ {
		engine.Step()
	}

	const batch = 1000
	allocsPerBatch := testing.AllocsPerRun(50, func() {
		for i := 0; i < batch; i++ {
			engine.Step()
		}
	})
	perEvent := allocsPerBatch / batch
	t.Logf("steady state: %.4f allocs/event (%.1f per %d-event batch)",
		perEvent, allocsPerBatch, batch)
	if perEvent > 1 {
		t.Fatalf("steady-state stepping allocates %.2f objects/event, want ≤1 (target 0)", perEvent)
	}
}

// TestSteadyStateStepAllocsSharded is the same gate for the sharded
// engine: once the per-shard event free lists and packet pools are
// primed, windowed execution across two shards — mailbox handoffs,
// ownership transfers, barriers — must stay allocation-free per event.
// Traffic is symmetric across the cut so the shard-local pools balance
// (cross-shard handoffs re-home packets to the receiving shard's pool;
// one-directional traffic would drain the sender's free list forever).
func TestSteadyStateStepAllocsSharded(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	s0 := net.AddSwitch("s0", netsim.BufferConfig{})
	s1 := net.AddSwitch("s1", netsim.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, s0, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.Connect(b, s1, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.Connect(s0, s1, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.ComputeRoutes()

	g := topology.PartitionAuto(net, 2).Apply(net)
	if g.Shards() != 2 {
		t.Fatalf("partition gave %d shards, want 2", g.Shards())
	}
	net.StartFlow(a, b, netsim.FlowConfig{Size: -1})
	net.StartFlow(b, a, netsim.FlowConfig{Size: -1})

	// Prime: pools, free lists, mailbox slices, worker machinery.
	end := 2 * sim.Millisecond
	engine.RunUntil(end)

	const runs = 20
	const step = 200 * sim.Microsecond
	firedBefore := g.Fired()
	allocsPerCall := testing.AllocsPerRun(runs, func() {
		end += step
		engine.RunUntil(end)
	})
	// AllocsPerRun runs the closure runs+1 times (one warm-up).
	eventsPerCall := float64(g.Fired()-firedBefore) / float64(runs+1)
	if eventsPerCall < 1000 {
		t.Fatalf("only %.0f events per window batch; workload too idle to gate", eventsPerCall)
	}
	perEvent := allocsPerCall / eventsPerCall
	t.Logf("sharded steady state: %.4f allocs/event (%.1f per ~%.0f-event window batch, 2 shards)",
		perEvent, allocsPerCall, eventsPerCall)
	if perEvent > 1 {
		t.Fatalf("sharded steady-state allocates %.2f objects/event, want ≤1 (target 0)", perEvent)
	}
}
