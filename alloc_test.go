// Allocation-regression gate for the zero-allocation hot path: once the
// event free list and the packet pool are primed, steady-state stepping
// of the saturated-link topology (the BenchmarkEnginePacketEvents
// workload) must not allocate. The gate is ≤1 alloc/event to absorb
// incidental runtime noise; the measured value is 0.
package rocc_test

import (
	"testing"

	"rocc/internal/netsim"
	"rocc/internal/sim"
)

func TestSteadyStateStepAllocs(t *testing.T) {
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	c := net.AddHost("c")
	net.Connect(a, sw, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.Connect(sw, c, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.ComputeRoutes()
	net.StartFlow(a, c, netsim.FlowConfig{Size: -1})

	// Prime the pipeline: packet pool, event free list, heap capacity.
	for i := 0; i < 200_000; i++ {
		engine.Step()
	}

	const batch = 1000
	allocsPerBatch := testing.AllocsPerRun(50, func() {
		for i := 0; i < batch; i++ {
			engine.Step()
		}
	})
	perEvent := allocsPerBatch / batch
	t.Logf("steady state: %.4f allocs/event (%.1f per %d-event batch)",
		perEvent, allocsPerBatch, batch)
	if perEvent > 1 {
		t.Fatalf("steady-state stepping allocates %.2f objects/event, want ≤1 (target 0)", perEvent)
	}
}
