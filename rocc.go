// Package rocc is a from-scratch Go implementation of RoCC — "RoCC:
// Robust Congestion Control for RDMA" (Taheri et al., CoNEXT 2020) —
// together with everything needed to reproduce the paper's evaluation:
// a packet-level datacenter network simulator, the DCQCN, DCQCN+PI,
// HPCC, TIMELY and QCN baselines, the §5 control-theoretic stability
// analysis, the §6 workloads and topologies, and a real-socket testbed
// standing in for the paper's DPDK deployment.
//
// This package is the public facade: it re-exports the library's main
// types so downstream users program against a single import path.
//
// # Quick start
//
//	engine := rocc.NewEngine()
//	star := rocc.BuildStar(engine, 1, 4, rocc.Gbps(40))
//	stack := rocc.NewStack(star.Net, rocc.ProtoRoCC, 0)
//	stack.EnablePort(star.Bottleneck)
//	for _, src := range star.Sources {
//		stack.StartFlow(src, star.Dst, -1, rocc.Gbps(36))
//	}
//	engine.RunUntil(20 * rocc.Millisecond)
//
// See examples/ for complete programs and internal packages' docs for
// the algorithm-level API.
package rocc

import (
	"rocc/internal/control"
	"rocc/internal/core"
	"rocc/internal/experiments"
	"rocc/internal/netsim"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/topology"
	"rocc/internal/workload"
)

// Simulation engine and virtual time.
type (
	// Engine is the discrete-event simulator driving every experiment.
	Engine = sim.Engine
	// Time is a virtual-time instant or duration in nanoseconds.
	Time = sim.Time
)

// Duration units for Time.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns an empty discrete-event engine.
func NewEngine() *Engine { return sim.New() }

// Network model.
type (
	// Network is the simulated fabric: hosts, switches, links, flows.
	Network = netsim.Network
	// Host is an RDMA endpoint with per-flow rate limiting.
	Host = netsim.Host
	// Switch is a shared-buffer switch with ECMP and PFC.
	Switch = netsim.Switch
	// Port is one link endpoint with priority queues.
	Port = netsim.Port
	// Flow is a unidirectional message transfer.
	Flow = netsim.Flow
	// FlowID identifies a flow within a Network.
	FlowID = netsim.FlowID
	// FlowConfig parameterizes StartFlow.
	FlowConfig = netsim.FlowConfig
	// BufferConfig describes switch buffering and PFC.
	BufferConfig = netsim.BufferConfig
	// OperatingMode is the fabric loss discipline: PFC-only, CC-only
	// lossy, or hybrid (CC with PFC as backstop).
	OperatingMode = netsim.OperatingMode
	// Rate is bits per second.
	Rate = netsim.Rate
	// FlowCC is the per-flow congestion-controller interface.
	FlowCC = netsim.FlowCC
	// PortCC is the switch-side congestion-control attachment.
	PortCC = netsim.PortCC
)

// The fabric operating modes.
const (
	ModeHybrid      = netsim.ModeHybrid
	ModePFCOnly     = netsim.ModePFCOnly
	ModeCCOnlyLossy = netsim.ModeCCOnlyLossy
)

// Gbps returns a Rate of g gigabits per second.
func Gbps(g float64) Rate { return netsim.Gbps(g) }

// Mbps returns a Rate of m megabits per second.
func Mbps(m float64) Rate { return netsim.Mbps(m) }

// NewNetwork creates an empty network on the engine with a seeded RNG.
func NewNetwork(engine *Engine, seed int64) *Network { return netsim.New(engine, seed) }

// RoCC algorithms (the paper's contribution).
type (
	// CPConfig holds the Alg. 1 congestion-point parameters.
	CPConfig = core.CPConfig
	// CP is the fair-rate calculator for one egress queue (Alg. 1).
	CP = core.CP
	// RPConfig holds the Alg. 2 reaction-point parameters.
	RPConfig = core.RPConfig
	// RP is the per-flow reaction point (Alg. 2).
	RP = core.RP
	// CPKey identifies a congestion point in CNP acceptance.
	CPKey = core.CPKey
	// CPOptions configures a simulated RoCC congestion point.
	CPOptions = roccnet.CPOptions
	// RPOptions configures a simulated RoCC reaction point.
	RPOptions = roccnet.RPOptions
	// SwitchCP is a RoCC congestion point attached to a switch port.
	SwitchCP = roccnet.CP
)

// NewCP builds a congestion point from an Alg. 1 configuration.
func NewCP(cfg CPConfig) *CP { return core.NewCP(cfg) }

// NewRP builds a reaction point from an Alg. 2 configuration.
func NewRP(cfg RPConfig) *RP { return core.NewRP(cfg) }

// CPConfig40G returns the paper's §6 parameters for 40 Gb/s links.
func CPConfig40G() CPConfig { return core.CPConfig40G() }

// CPConfig100G returns the paper's §6 parameters for 100 Gb/s links.
func CPConfig100G() CPConfig { return core.CPConfig100G() }

// CPConfigForGbps derives parameters for an arbitrary link bandwidth.
func CPConfigForGbps(gbps float64) CPConfig { return core.CPConfigForGbps(gbps) }

// EnableRoCC attaches a RoCC congestion point to a switch egress port.
func EnableRoCC(net *Network, sw *Switch, port *Port, opts CPOptions) *SwitchCP {
	return roccnet.Attach(net, sw, port, opts)
}

// NewRoCCFlowCC builds the RoCC reaction point as a flow controller.
func NewRoCCFlowCC(engine *Engine, host *Host, opts RPOptions) FlowCC {
	return roccnet.NewFlowCC(engine, host, opts)
}

// Topologies (§6).
type (
	// Star is the single-bottleneck micro-benchmark topology.
	Star = topology.Star
	// MultiBottleneck is the Fig. 10 topology.
	MultiBottleneck = topology.MultiBottleneck
	// Asymmetric is the §6.1 asymmetric topology.
	Asymmetric = topology.Asymmetric
	// FatTree is the §6.3 two-level fat-tree.
	FatTree = topology.FatTree
	// FatTreeConfig sizes a fat-tree.
	FatTreeConfig = topology.FatTreeConfig
)

// BuildStar constructs an N-source single-bottleneck star.
func BuildStar(engine *Engine, seed int64, n int, rate Rate) *Star {
	return topology.BuildStar(engine, seed, n, rate)
}

// BuildMultiBottleneck constructs the Fig. 10 topology.
func BuildMultiBottleneck(engine *Engine, seed int64) *MultiBottleneck {
	return topology.BuildMultiBottleneck(engine, seed)
}

// BuildAsymmetric constructs the §6.1 asymmetric topology.
func BuildAsymmetric(engine *Engine, seed int64) *Asymmetric {
	return topology.BuildAsymmetric(engine, seed)
}

// BuildFatTree constructs a §6.3 fat-tree.
func BuildFatTree(engine *Engine, seed int64, cfg FatTreeConfig) *FatTree {
	return topology.BuildFatTree(engine, seed, cfg)
}

// PaperFatTree returns the paper's 3×3×30 fat-tree configuration.
func PaperFatTree() FatTreeConfig { return topology.PaperFatTree() }

// Protocol stacks and experiment runners.
type (
	// Protocol names a congestion-control scheme under test.
	Protocol = experiments.Protocol
	// Stack wires a protocol into a built network.
	Stack = experiments.Stack
	// Mix composes several protocols on one fabric, assigning a
	// congestion-control scheme per flow.
	Mix = experiments.Mix
	// CongestionOps is the descriptor one scheme implements to plug into
	// a Stack or Mix: switch attachment, receiver hook, flow controller,
	// ACK cadence and packet-feature requirements.
	CongestionOps = netsim.CongestionOps
	// CCFeatures are the packet-level capacities a scheme requires.
	CCFeatures = netsim.CCFeatures
)

// The protocols the paper evaluates.
const (
	ProtoRoCC    = experiments.ProtoRoCC
	ProtoDCQCN   = experiments.ProtoDCQCN
	ProtoDCQCNPI = experiments.ProtoDCQCNPI
	ProtoHPCC    = experiments.ProtoHPCC
	ProtoTIMELY  = experiments.ProtoTIMELY
	ProtoQCN     = experiments.ProtoQCN
	ProtoDCTCP   = experiments.ProtoDCTCP
)

// NewStack builds a protocol stack for a network. baseRTT parameterizes
// window-based protocols; zero uses a 10 µs default.
func NewStack(net *Network, proto Protocol, baseRTT Time) *Stack {
	return experiments.NewStack(net, proto, baseRTT)
}

// NewMix builds a multi-protocol composer for a network. Activate (or
// Use) protocols, wire ports and receivers, then start flows with a
// protocol each.
func NewMix(net *Network, baseRTT Time) *Mix {
	return experiments.NewMix(net, baseRTT)
}

// RegisterProtocol installs a custom congestion-control scheme under a
// name, making it available to Stack, Mix, and the chaos soak.
func RegisterProtocol(p Protocol, factory func(m *Mix) CongestionOps) {
	experiments.RegisterOps(p, factory)
}

// Workloads (§6.3).
type (
	// CDF is a flow-size distribution.
	CDF = workload.CDF
	// Poisson is an open-loop flow-arrival process.
	Poisson = workload.Poisson
)

// WebSearch returns the throughput-heavy flow-size distribution.
func WebSearch() *CDF { return workload.WebSearch() }

// FBHadoop returns the latency-sensitive flow-size distribution.
func FBHadoop() *CDF { return workload.FBHadoop() }

// Stability analysis (§5).
type (
	// ControlSystem is the linearized RoCC loop for margin analysis.
	ControlSystem = control.System
)
