// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6, App. A), plus ablations of RoCC's design choices.
// Each iteration runs the complete experiment at a laptop-scale
// configuration; the figures' key quantities are attached as custom
// benchmark metrics, and `go run ./cmd/roccsim <fig> -full` reproduces
// the paper-scale version. Shapes (who wins, by what factor) match the
// paper; EXPERIMENTS.md records paper-vs-measured values.
package rocc_test

import (
	"testing"

	"rocc/internal/core"
	"rocc/internal/experiments"
	"rocc/internal/flowtable"
	"rocc/internal/fluid"
	"rocc/internal/netsim"
	"rocc/internal/qos"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/topology"
	"rocc/internal/workload"
)

func roccCfg40MDOff() core.CPConfig {
	cfg := core.CPConfig40G()
	cfg.DisableMD = true
	return cfg
}

func roccCfg40AutoTuneOff() core.CPConfig {
	cfg := core.CPConfig40G()
	cfg.DisableAutoTune = true
	return cfg
}

func roccHostRegistry() func(core.CPKey) core.CPConfig {
	return func(core.CPKey) core.CPConfig { return core.CPConfig40G() }
}

// --- §5 stability analysis (Figs. 5, 6, 7a, 7b) ---

func BenchmarkFig5PhaseMarginGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.RunFig5()
		if i == 0 {
			stable := 0
			for _, p := range pts {
				if p.MarginDeg > 0 {
					stable++
				}
			}
			b.ReportMetric(float64(stable), "stable-cells")
		}
	}
}

func BenchmarkFig6StabilityVsN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig6()
		if i == 0 {
			b.ReportMetric(rows[0].MarginDeg, "PM(N=2)-deg")
			b.ReportMetric(rows[1].MarginDeg, "PM(N=10)-deg")
		}
	}
}

func BenchmarkFig7aPhaseMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFig7()
		if i == 0 {
			b.ReportMetric(rows[len(rows)-1].MarginDeg, "PM(last-pair,N=128)-deg")
		}
	}
}

func BenchmarkFig7bLoopBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunAutoTune(0.3, 3)
		if i == 0 {
			b.ReportMetric(rows[0].BandwidthHz, "autotuned-bw-hz")
		}
	}
}

// --- §6.1 micro-benchmarks (Figs. 8, 9, 11, 12) ---

func BenchmarkFig8FairnessStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig8(experiments.Fig8Config{
			N: 10, Gbps: 40, Duration: 15 * sim.Millisecond, Seed: int64(i + 1),
		})
		if i == 0 {
			b.ReportMetric(r.SteadyQueKB, "queue-KB")
			b.ReportMetric(r.SteadyRate, "fair-Gbps")
			b.ReportMetric(r.ConvergedAt*1e3, "conv-ms")
		}
	}
}

func BenchmarkFig9Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig9(experiments.Fig9Config{
			Phase: 5 * sim.Millisecond, Seed: int64(i + 1),
		})
		if i == 0 {
			b.ReportMetric(r.PhaseRates[len(r.PhaseRates)-1], "final-fair-Gbps")
			b.ReportMetric(float64(r.PFCFrames), "pfc-frames")
		}
	}
}

func BenchmarkFig11Comparison(b *testing.B) {
	for _, p := range experiments.MicroProtocols() {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := experiments.RunFig11(p, experiments.Fig11Config{
					Duration: 20 * sim.Millisecond, Seed: int64(i + 1),
				})
				if i == 0 {
					b.ReportMetric(row.FlowRateStd, "rate-std-Gbps")
					b.ReportMetric(row.QueueMeanKB, "queue-KB")
					b.ReportMetric(row.Utilization, "util")
				}
			}
		})
	}
}

func BenchmarkFig12aMultiBottleneck(b *testing.B) {
	for _, p := range experiments.ComparisonProtocols() {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFig12a(p, 25*sim.Millisecond, int64(i+1))
				if i == 0 {
					b.ReportMetric(r.D[0], "D0-Gbps")
					b.ReportMetric(r.D[5], "D5-Gbps")
				}
			}
		})
	}
}

func BenchmarkFig12bAsymmetric(b *testing.B) {
	for _, p := range experiments.ComparisonProtocols() {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFig12b(p, 25*sim.Millisecond, int64(i+1))
				if i == 0 {
					b.ReportMetric(r.SlowAvg, "slow-Gbps")
					b.ReportMetric(r.FastAvg, "fast-Gbps")
				}
			}
		})
	}
}

// --- §6.2 testbed twin (Fig. 13; real sockets via cmd/rocclab) ---

func BenchmarkFig13Testbed(b *testing.B) {
	for _, sc := range []experiments.Fig13Scenario{experiments.Fig13Uniform, experiments.Fig13Mixed} {
		b.Run(string(sc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFig13Sim(sc, 40*sim.Millisecond, int64(i+1))
				if i == 0 {
					b.ReportMetric(r.SteadyQueKB, "queue-KB")
					b.ReportMetric(r.SteadyRate, "fair-Gbps")
				}
			}
		})
	}
}

// --- §6.3 large-scale fat-tree (Figs. 14-18, Table 3, Fig. 20) ---

func fctConfig(p experiments.Protocol, wl *workload.CDF, seed int64) experiments.FCTConfig {
	return experiments.FCTConfig{
		Protocol: p,
		Workload: wl,
		Load:     0.7,
		FatTree:  topology.ScaledFatTree(8),
		Duration: 25 * sim.Millisecond,
		Seed:     seed,
	}
}

func benchFCT(b *testing.B, wl *workload.CDF, metric func(experiments.FCTResult) (string, float64)) {
	for _, p := range experiments.ComparisonProtocols() {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFCT(fctConfig(p, wl, int64(i+1)))
				if i == 0 {
					name, v := metric(r)
					b.ReportMetric(v, name)
					b.ReportMetric(float64(r.FlowsDone), "flows")
				}
			}
		})
	}
}

// benchFCTReps measures the repetition fan-out of the §6.3 experiments:
// the same 4-rep RoCC run through the harness at a given worker count.
// Comparing the Serial and Parallel4 variants shows the wall-clock win
// the -workers flag buys (EXPERIMENTS.md records the measured speedup).
func benchFCTReps(b *testing.B, workers int) {
	cfg := fctConfig(experiments.ProtoRoCC, workload.WebSearch(), 1)
	for i := 0; i < b.N; i++ {
		rs := experiments.RunFCTReps(cfg, 4, workers)
		for _, r := range rs {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		if i == 0 {
			b.ReportMetric(float64(rs[0].Value.FlowsDone), "flows-per-rep")
		}
	}
}

func BenchmarkFig14RepsSerial(b *testing.B)    { benchFCTReps(b, 1) }
func BenchmarkFig14RepsParallel4(b *testing.B) { benchFCTReps(b, 4) }

func lastPopulated(bins []int, r experiments.FCTResult, pick func(i int) float64) float64 {
	for i := len(r.Bins) - 1; i >= 0; i-- {
		if r.Bins[i].Count > 0 {
			return pick(i)
		}
	}
	return 0
}

func BenchmarkFig14AvgFCT(b *testing.B) {
	benchFCT(b, workload.WebSearch(), func(r experiments.FCTResult) (string, float64) {
		return "elephant-avg-ms", lastPopulated(nil, r, func(i int) float64 { return r.Bins[i].AvgMs })
	})
}

func BenchmarkFig15P90FCT(b *testing.B) {
	benchFCT(b, workload.WebSearch(), func(r experiments.FCTResult) (string, float64) {
		return "elephant-p90-ms", lastPopulated(nil, r, func(i int) float64 { return r.Bins[i].P90Ms })
	})
}

func BenchmarkFig16P99FCT(b *testing.B) {
	benchFCT(b, workload.FBHadoop(), func(r experiments.FCTResult) (string, float64) {
		return "tail-p99-ms", lastPopulated(nil, r, func(i int) float64 { return r.Bins[i].P99Ms })
	})
}

func BenchmarkTable3RateAllocation(b *testing.B) {
	benchFCT(b, workload.FBHadoop(), func(r experiments.FCTResult) (string, float64) {
		return "rate-std-Mbps", r.RateStd
	})
}

func BenchmarkFig17aQueueSize(b *testing.B) {
	benchFCT(b, workload.WebSearch(), func(r experiments.FCTResult) (string, float64) {
		return "core-queue-KB", r.Core.AvgQueueKB
	})
}

func BenchmarkFig17bPFC(b *testing.B) {
	benchFCT(b, workload.WebSearch(), func(r experiments.FCTResult) (string, float64) {
		return "pfc-frames", float64(r.Core.PFCFrames + r.IngressEdge.PFCFrames + r.EgressEdge.PFCFrames)
	})
}

func BenchmarkFig18UnlimitedBuffer(b *testing.B) {
	for _, p := range experiments.ComparisonProtocols() {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFold(fctConfig(p, workload.FBHadoop(), int64(i+1)), experiments.Unlimited)
				if i == 0 {
					b.ReportMetric(r.BufferFold, "buffer-fold")
				}
			}
		})
	}
}

func BenchmarkFig19Verification(b *testing.B) {
	for _, p := range []experiments.Protocol{experiments.ProtoDCQCN, experiments.ProtoHPCC} {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFig19(p, 10*sim.Millisecond, int64(i+1))
				if i == 0 {
					b.ReportMetric(r.PhaseRates[0][0], "N1-Gbps")
				}
			}
		})
	}
}

func BenchmarkFig20Lossy(b *testing.B) {
	for _, p := range experiments.ComparisonProtocols() {
		b.Run(string(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiments.RunFold(fctConfig(p, workload.FBHadoop(), int64(i+1)), experiments.Lossy)
				if i == 0 {
					b.ReportMetric(r.RetxShare*100, "retx-pct")
				}
			}
		})
	}
}

// --- Ablations of RoCC's design choices (DESIGN.md §4) ---

// ablationStar runs the N=10 micro-benchmark with customized RoCC options
// and reports stability metrics.
func ablationStar(b *testing.B, cpOpts roccnet.CPOptions, rpOpts roccnet.RPOptions) {
	for i := 0; i < b.N; i++ {
		engine := sim.New()
		star := topology.BuildStar(engine, int64(i+1), 10, netsim.Gbps(40))
		stack := experiments.NewStack(star.Net, experiments.ProtoRoCC, 0)
		stack.RoCCOpts = cpOpts
		stack.RoCCRP = rpOpts
		stack.EnablePort(star.Bottleneck)
		for _, src := range star.Sources {
			stack.StartFlow(src, star.Dst, -1, netsim.Gbps(36))
		}
		sampler := experiments.NewSampler(engine, 0)
		queue := sampler.Queue("q", star.Bottleneck)
		engine.RunUntil(15 * sim.Millisecond)
		if i == 0 {
			b.ReportMetric(queue.MeanAfter(0.0075), "queue-KB")
			b.ReportMetric(queue.StdDevAfter(0.0075), "queue-std-KB")
			b.ReportMetric(float64(star.Net.TotalPFCFrames()), "pfc-frames")
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	ablationStar(b, roccnet.CPOptions{}, roccnet.RPOptions{})
}

func BenchmarkAblationMDDisabled(b *testing.B) {
	ablationStar(b, roccnet.CPOptions{Core: roccCfg40MDOff()}, roccnet.RPOptions{})
}

func BenchmarkAblationAutoTuneDisabled(b *testing.B) {
	ablationStar(b, roccnet.CPOptions{Core: roccCfg40AutoTuneOff()}, roccnet.RPOptions{})
}

func BenchmarkAblationCNPInDataClass(b *testing.B) {
	ablationStar(b, roccnet.CPOptions{CNPClass: netsim.ClassData}, roccnet.RPOptions{})
}

func BenchmarkAblationHostComputed(b *testing.B) {
	ablationStar(b,
		roccnet.CPOptions{HostComputed: true},
		roccnet.RPOptions{HostRegistry: roccHostRegistry()})
}

func BenchmarkAblationFlowTables(b *testing.B) {
	tables := []struct {
		name string
		mk   func(r *sim.Rand) flowtable.Table
	}{
		{"queue", func(*sim.Rand) flowtable.Table { return flowtable.NewQueueTable() }},
		{"bounded", func(*sim.Rand) flowtable.Table { return flowtable.NewBoundedTable(400, 500*sim.Microsecond) }},
		{"afd", func(*sim.Rand) flowtable.Table { return flowtable.NewAFDTable(3000, 64) }},
		{"elephanttrap", func(r *sim.Rand) flowtable.Table { return flowtable.NewElephantTrap(0.25, 64, r) }},
		{"bubblecache", func(r *sim.Rand) flowtable.Table { return flowtable.NewBubbleCache(0.5, 16, 64, 2, r) }},
	}
	for _, tb := range tables {
		tb := tb
		b.Run(tb.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := sim.NewRand(int64(i + 1))
				ablationStarOnce(b, i == 0, roccnet.CPOptions{Table: tb.mk(r)})
			}
		})
	}
}

func ablationStarOnce(b *testing.B, report bool, cpOpts roccnet.CPOptions) {
	engine := sim.New()
	star := topology.BuildStar(engine, 1, 10, netsim.Gbps(40))
	stack := experiments.NewStack(star.Net, experiments.ProtoRoCC, 0)
	stack.RoCCOpts = cpOpts
	stack.EnablePort(star.Bottleneck)
	for _, src := range star.Sources {
		stack.StartFlow(src, star.Dst, -1, netsim.Gbps(36))
	}
	sampler := experiments.NewSampler(engine, 0)
	queue := sampler.Queue("q", star.Bottleneck)
	tput := sampler.PortThroughput("t", star.Bottleneck)
	engine.RunUntil(15 * sim.Millisecond)
	if report {
		b.ReportMetric(queue.MeanAfter(0.0075), "queue-KB")
		b.ReportMetric(tput.MeanAfter(0.0075), "tput-Gbps")
	}
}

func BenchmarkAblationUpdateInterval(b *testing.B) {
	for _, t := range []sim.Time{20 * sim.Microsecond, 40 * sim.Microsecond, 80 * sim.Microsecond, 160 * sim.Microsecond} {
		t := t
		b.Run(t.String(), func(b *testing.B) {
			ablationStar(b, roccnet.CPOptions{T: t}, roccnet.RPOptions{RecoveryTimer: 5 * t})
		})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkEnginePacketEvents(b *testing.B) {
	// Raw simulator throughput: events per second on a saturated link.
	engine := sim.New()
	net := netsim.New(engine, 1)
	sw := net.AddSwitch("s", netsim.BufferConfig{})
	a := net.AddHost("a")
	c := net.AddHost("c")
	net.Connect(a, sw, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.Connect(sw, c, netsim.Gbps(100), 1500*sim.Nanosecond)
	net.ComputeRoutes()
	net.StartFlow(a, c, netsim.FlowConfig{Size: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Step()
	}
}

// --- extensions beyond the paper ---

// BenchmarkExtensionQoS exercises the §8 future-work extension: two
// traffic classes with 2:1 weights must split the bottleneck 2:1 while
// staying max-min fair within each class.
func BenchmarkExtensionQoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		engine := sim.New()
		star := topology.BuildStar(engine, int64(i+1), 6, netsim.Gbps(40))
		classOf := map[netsim.FlowID]int{}
		qos.Attach(star.Net, star.Switch, star.Bottleneck, qos.Options{
			Weights:  []float64{1, 0.5},
			Classify: func(f netsim.FlowID) int { return classOf[f] },
		})
		var flows []*netsim.Flow
		for j, src := range star.Sources {
			f := star.Net.StartFlow(src, star.Dst, netsim.FlowConfig{
				Size: -1, MaxRate: netsim.Gbps(36),
				CC: roccnet.NewFlowCC(engine, src, roccnet.RPOptions{}),
			})
			classOf[f.ID] = j % 2
			flows = append(flows, f)
		}
		engine.RunUntil(15 * sim.Millisecond)
		if i == 0 {
			var shares [2]float64
			for _, f := range flows {
				shares[classOf[f.ID]] += float64(f.DeliveredBytes()) * 8 / engine.Now().Seconds() / 1e9
			}
			b.ReportMetric(shares[0]/shares[1], "class-ratio")
		}
	}
}

// BenchmarkExtensionFluidModel measures the §5.1 fluid integrator, which
// cross-validates the packet simulator at a fraction of the cost.
func BenchmarkExtensionFluidModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := fluid.Run(fluid.Config{
			CP: core.CPConfig40G(), N: 50, LinkMbps: 40000, T: 40e-6, Steps: 4000,
		})
		if i == 0 {
			b.ReportMetric(r.FinalRate(), "fluid-F-Mbps")
		}
	}
}
