// Command roccp4 emits the §4.2 P4 artifacts: the v1model P4₁₆ program
// for the RoCC switch role and the control-plane parameter registry.
//
// Usage:
//
//	roccp4 [-gbps 40] [-t 40] [-o DIR]
//
// Writes rocc.p4 and rocc_controlplane.json into DIR (default ".").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rocc/internal/core"
	"rocc/internal/p4gen"
)

func main() {
	gbps := flag.Float64("gbps", 40, "link bandwidth the CP parameters target")
	t := flag.Int("t", 40, "CNP generation period in microseconds")
	out := flag.String("o", ".", "output directory")
	flag.Parse()

	opts := p4gen.Options{Core: core.CPConfigForGbps(*gbps), TMicros: *t}
	program, err := p4gen.Program(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	config, err := p4gen.Config(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p4Path := filepath.Join(*out, "rocc.p4")
	cfgPath := filepath.Join(*out, "rocc_controlplane.json")
	if err := os.WriteFile(p4Path, []byte(program), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(cfgPath, []byte(config), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s and %s (B=%.0fG, T=%dus)\n", p4Path, cfgPath, *gbps, *t)
}
