// Command rocclab runs the §6.2 testbed scenarios on real UDP sockets
// over loopback (the DPDK-evaluation analog, Fig. 13): a user-space
// software switch with the RoCC congestion point, and three clients with
// reaction points. Compare its output with `roccsim fig13`.
//
// Usage:
//
//	rocclab [-dur 4s] [-rate 400e6] [uni|mix|both]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rocc/internal/testbed"
)

func main() {
	dur := flag.Duration("dur", 4*time.Second, "scenario duration (real time)")
	rate := flag.Float64("rate", 400e6, "software switch drain rate, bits/s")
	flag.Parse()

	which := "both"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	cfg := testbed.DefaultConfig()
	cfg.DrainRate = *rate

	scenarios := []testbed.Scenario{testbed.Uniform, testbed.Mixed}
	switch which {
	case "uni":
		scenarios = scenarios[:1]
	case "mix":
		scenarios = scenarios[1:]
	case "both":
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q (want uni, mix or both)\n", which)
		os.Exit(2)
	}

	fmt.Printf("software switch: drain %.0f Mb/s, T=%v, Qref=%d KB\n",
		*rate/1e6, cfg.T, cfg.CP.QrefBytes/1000)
	for _, sc := range scenarios {
		res, err := testbed.Run(cfg, sc, *dur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "testbed:", err)
			os.Exit(1)
		}
		fmt.Println(res)
		ideal := *rate / 3 / 1e6
		if sc == testbed.Mixed {
			// Max-min: clients 2 and 3 are innocent; client 1 gets the rest.
			ideal = *rate * 0.6 / 1e6
		}
		fmt.Printf("  (ideal fair rate %.1f Mb/s, reference queue %d KB)\n",
			ideal, cfg.CP.QrefBytes/1000)
	}
}
