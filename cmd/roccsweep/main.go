// Command roccsweep sweeps the §5.1 fluid model of the RoCC loop over
// flow counts and gain scalings, using the real quantized controller
// (internal/core) rather than its linearization. It prints a stability
// map — the complement of Figs. 5-7 computed nonlinearly — and, with
// -csv, writes the raw grid for external plotting.
//
// The (configuration × N) grid cells are independent fluid integrations,
// so they fan out across -workers parallel workers; results are merged
// back in grid order, so -workers only changes the wall time, never the
// output.
//
// Usage:
//
//	roccsweep [-gbps 40] [-maxn 256] [-tol 0.15] [-workers 0] [-csv file]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"rocc/internal/core"
	"rocc/internal/fluid"
	"rocc/internal/harness"
)

func main() {
	gbps := flag.Float64("gbps", 40, "link bandwidth")
	maxN := flag.Int("maxn", 256, "largest flow count to sweep")
	tol := flag.Float64("tol", 0.15, "convergence band around the Eq. 1 fixed point")
	workers := flag.Int("workers", 0, "parallel workers for the sweep grid (0 = GOMAXPROCS)")
	csvPath := flag.String("csv", "", "write the raw (scale, N, converged, finalRate) grid as CSV")
	flag.Parse()

	scales := []float64{4, 2, 1, 0.5, 0.25}
	fmt.Printf("fluid stability sweep: B=%.0fG, tol=%.0f%%, auto-tune ON vs gains pinned at scale×(α̃, β̃)\n\n", *gbps, *tol*100)
	fmt.Printf("%-22s", "configuration")
	var ns []int
	for n := 2; n <= *maxN; n *= 2 {
		fmt.Printf(" N=%-4d", n)
		ns = append(ns, n)
	}
	fmt.Println()

	// Build the full (configuration × N) cell grid up front, then fan it
	// out; the harness slots results by cell index, keeping the table and
	// CSV rows in the same order as the old serial double loop.
	type cell struct {
		label string
		cfg   core.CPConfig
		n     int
	}
	var cells []cell
	addRow := func(label string, mutate func(*core.CPConfig)) {
		cfg := core.CPConfigForGbps(*gbps)
		mutate(&cfg)
		for _, n := range ns {
			cells = append(cells, cell{label, cfg, n})
		}
	}
	addRow("auto-tuned", func(*core.CPConfig) {})
	for _, sc := range scales {
		sc := sc
		addRow(fmt.Sprintf("pinned %.2gx", sc), func(c *core.CPConfig) {
			c.DisableAutoTune = true
			c.AlphaTilde *= sc
			c.BetaTilde *= sc
		})
	}

	rs := harness.Run(len(cells), harness.Options{Workers: *workers}, func(i int) (fluid.Result, error) {
		return fluid.Run(fluid.Config{
			CP: cells[i].cfg, N: cells[i].n, LinkMbps: *gbps * 1000, T: 40e-6, Steps: 6000,
		}), nil
	})

	var rows [][]string
	for i, r := range rs {
		if i%len(ns) == 0 {
			fmt.Printf("%-22s", cells[i].label)
		}
		if r.Err != nil {
			fmt.Printf(" err  ")
			rows = append(rows, []string{cells[i].label, strconv.Itoa(cells[i].n), "err", ""})
		} else {
			mark := "ok   "
			conv := 1
			if !r.Value.Converged(*tol) {
				mark = "FAIL "
				conv = 0
			}
			fmt.Printf(" %s", mark)
			rows = append(rows, []string{
				cells[i].label, strconv.Itoa(cells[i].n), strconv.Itoa(conv),
				strconv.FormatFloat(r.Value.FinalRate(), 'g', 6, 64),
			})
		}
		if i%len(ns) == len(ns)-1 {
			fmt.Println()
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		w.Write([]string{"config", "n", "converged", "final_rate_mbps"})
		w.WriteAll(rows)
		w.Flush()
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}
