// Command roccsweep sweeps the §5.1 fluid model of the RoCC loop over
// flow counts and gain scalings, using the real quantized controller
// (internal/core) rather than its linearization. It prints a stability
// map — the complement of Figs. 5-7 computed nonlinearly — and, with
// -csv, writes the raw grid for external plotting.
//
// Usage:
//
//	roccsweep [-gbps 40] [-maxn 256] [-tol 0.15] [-csv file]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"rocc/internal/core"
	"rocc/internal/fluid"
)

func main() {
	gbps := flag.Float64("gbps", 40, "link bandwidth")
	maxN := flag.Int("maxn", 256, "largest flow count to sweep")
	tol := flag.Float64("tol", 0.15, "convergence band around the Eq. 1 fixed point")
	csvPath := flag.String("csv", "", "write the raw (scale, N, converged, finalRate) grid as CSV")
	flag.Parse()

	scales := []float64{4, 2, 1, 0.5, 0.25}
	fmt.Printf("fluid stability sweep: B=%.0fG, tol=%.0f%%, auto-tune ON vs gains pinned at scale×(α̃, β̃)\n\n", *gbps, *tol*100)
	fmt.Printf("%-22s", "configuration")
	for n := 2; n <= *maxN; n *= 2 {
		fmt.Printf(" N=%-4d", n)
	}
	fmt.Println()

	var rows [][]string
	runRow := func(label string, mutate func(*core.CPConfig)) {
		cfg := core.CPConfigForGbps(*gbps)
		mutate(&cfg)
		fmt.Printf("%-22s", label)
		for n := 2; n <= *maxN; n *= 2 {
			r := fluid.Run(fluid.Config{
				CP: cfg, N: n, LinkMbps: *gbps * 1000, T: 40e-6, Steps: 6000,
			})
			mark := "ok   "
			conv := 1
			if !r.Converged(*tol) {
				mark = "FAIL "
				conv = 0
			}
			fmt.Printf(" %s", mark)
			rows = append(rows, []string{
				label, strconv.Itoa(n), strconv.Itoa(conv),
				strconv.FormatFloat(r.FinalRate(), 'g', 6, 64),
			})
		}
		fmt.Println()
	}

	runRow("auto-tuned", func(*core.CPConfig) {})
	for _, sc := range scales {
		sc := sc
		runRow(fmt.Sprintf("pinned %.2gx", sc), func(c *core.CPConfig) {
			c.DisableAutoTune = true
			c.AlphaTilde *= sc
			c.BetaTilde *= sc
		})
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		w.Write([]string{"config", "n", "converged", "final_rate_mbps"})
		w.WriteAll(rows)
		w.Flush()
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}
