// Command roccsim regenerates the tables and figures of the RoCC paper's
// evaluation (§6 and App. A) on the packet-level simulator.
//
// Usage:
//
//	roccsim [flags] [experiment]
//
// Experiments: fig5 fig6 fig7a fig7b fig8 fig9 fig11 fig12a fig12b fig13
// fig14 fig15 fig16 table3 fig17 fig18 fig19 fig20 qos table1 faults
// recovery rollout collective rogue soak scale all (default fig8)
//
// Flags:
//
//	-dur       duration of timed experiments (default per experiment)
//	-seed      RNG seed (default 1)
//	-full      use the paper's full fat-tree scale (3x3x30) and durations
//	-load      average load level for §6.3 runs (default 0.7)
//	-reps      repetitions per experiment cell (default 1; the paper uses 5);
//	           rep r runs with seed+r, results merged as mean ± 95% CI
//	-runs      deprecated alias for -reps (kept for old scripts)
//	-workers   parallel workers for repetition fan-out (default 0 = GOMAXPROCS);
//	           results are merged in repetition order, so -workers never
//	           changes the output, only the wall time
//	-plot      render queue/rate series as ASCII charts (fig8, fig9, fig13)
//	-csv       directory to write raw series/bin CSVs into
//	-protocol  protocol under test for fig8/fig9 (rocc, dcqcn, dcqcn+pi,
//	           hpcc, timely, qcn, dctcp); comparison figures sweep their
//	           own protocol sets and ignore this
//	-trace     write a Chrome trace-event JSON of the run's flight
//	           recorder to this file (load in chrome://tracing or Perfetto)
//	-metrics   print the telemetry registry snapshot after the run; with
//	           -csv also writes metrics.csv
//	-cpuprofile  write a CPU profile of the run (go tool pprof)
//	-memprofile  write an allocation profile taken after the run
//	-cnp-loss  faults: CNP loss probability (-1 = sweep 5/10/20%)
//	-link-flap faults: link-flap period (0 = default 5 ms, down 10% of it)
//	-mix       rollout: protocol mix for a single run, e.g.
//	           rocc:0.5,dcqcn:0.5 (empty = RoCC-fraction sweep)
//	-pattern   collective: ring|tree|alltoall|ps (default ring)
//	-ranks     collective: participant count (default 8)
//	-msg       collective: message bytes per participant (default 1 MiB)
//	-chunks    collective: pipeline chunks per message (default 2)
//	-iters     collective: iterations (default 4)
//	-coll-mode collective: run one operating mode instead of sweeping
//	           hybrid/pfconly/cconly
//	-kill      collective: none|link (kill an uplink mid-run and restore)
//	-rogue-kind rogue: rogue behaviour (cnpdeaf|ecnblind|blast; default
//	           cnpdeaf, adapted to each protocol's feedback channel)
//	-count     soak: number of scenarios (0 = until -budget, or 100)
//	-budget    soak: wall-clock budget for the campaign (0 = unlimited)
//	-soak-out  soak: directory for minimized repros (config JSON + trace)
//	-shrink    soak: delta-debug failing scenarios (default true)
//	-fault-scale soak: fault intensity (1 = default mix, 0 = clean)
//	-mix-prob  soak: probability a scenario mixes two protocols (default 0.25)
//	-mode-prob soak: probability a scenario runs in a non-default operating
//	           mode (PFC-only or CC-only lossy; default 0.25)
//	-rogue-prob soak: probability a scenario hosts rogue senders policed
//	           by switch-side defenses (default 0)
//	-shards    engine shards for fat-tree runs (-1 = auto: GOMAXPROCS on a
//	           multi-core machine, legacy single loop on one core; 0 =
//	           legacy; N >= 1 all produce identical output)
//	-flows     scale: concurrent persistent flows (default 100000)
//	-bench-out scale: path for the scaling-bench JSON (default BENCH_10.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"rocc/internal/experiments"
	"rocc/internal/export"
	"rocc/internal/netsim"
	"rocc/internal/plot"
	"rocc/internal/qos"
	"rocc/internal/roccnet"
	"rocc/internal/sim"
	"rocc/internal/stats"
	"rocc/internal/telemetry"
	"rocc/internal/topology"
	"rocc/internal/workload"
)

var (
	durFlag  = flag.Duration("dur", 0, "duration of timed experiments (virtual time)")
	seedFlag = flag.Int64("seed", 1, "RNG seed")
	fullFlag = flag.Bool("full", false, "use the paper's full fat-tree scale")
	loadFlag = flag.Float64("load", 0.7, "average load level for §6.3 runs")
	repsFlag = flag.Int("reps", 1, "repetitions per experiment cell (paper: 5)")
	runsFlag = flag.Int("runs", 1, "deprecated alias for -reps")
	workFlag = flag.Int("workers", 0, "parallel workers for repetitions (0 = GOMAXPROCS)")
	plotFlag = flag.Bool("plot", false, "render ASCII charts for series-producing experiments")
	csvFlag  = flag.String("csv", "", "directory to write raw CSV outputs into")
	fanFlag  = flag.Int("fanin", 0, "synchronized incast fan-in for fig18/fig20 (0 = smooth Poisson; 30 = paper incast level)")
	cnpFlag  = flag.Float64("cnp-loss", -1, "faults: CNP loss probability (-1 = sweep 5/10/20%)")
	flapFlag = flag.Duration("link-flap", 0, "faults: link-flap period (0 = default 5ms, down 10% of it)")

	protoFlag   = flag.String("protocol", "rocc", "protocol under test for fig8/fig9 (rocc|dcqcn|dcqcn+pi|hpcc|timely|qcn|dctcp)")
	traceFlag   = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	metricsFlag = flag.Bool("metrics", false, "print the telemetry metrics snapshot after the run")

	cpuproFlag = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memproFlag = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
)

// proto is the -protocol flag resolved by main; runTel is the telemetry
// bundle experiments attach to when -trace or -metrics asks for one.
var (
	proto  experiments.Protocol
	runTel *experiments.RunTelemetry
)

// emitSeries optionally plots and/or exports sampled series.
func emitSeries(name string, series ...*stats.Series) {
	if *plotFlag {
		fmt.Println(plot.Line(name, 72, 12, series...))
	}
	if *csvFlag != "" {
		if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			return
		}
		f, err := os.Create(filepath.Join(*csvFlag, name+".csv"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			return
		}
		defer f.Close()
		if err := export.Series(f, series...); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
		}
	}
}

// emitBins optionally exports per-bin FCT statistics.
func emitBins(name, protocol string, bins []stats.BinStat) {
	if *csvFlag == "" {
		return
	}
	if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	path := filepath.Join(*csvFlag, name+"_"+protocol+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	if err := export.Bins(f, protocol, bins); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
	}
}

func main() {
	flag.Parse()
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: roccsim [flags] [fig5|fig6|fig7a|fig7b|fig8|fig9|fig11|fig12a|fig12b|fig13|fig14|fig15|fig16|table3|fig17|fig18|fig19|fig20|qos|table1|faults|recovery|rollout|collective|rogue|soak|scale|all]")
		os.Exit(2)
	}
	name := "fig8" // the canonical single-bottleneck experiment
	if flag.NArg() == 1 {
		name = flag.Arg(0)
	}
	var err error
	if proto, err = experiments.ParseProtocol(*protoFlag); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceFlag != "" || *metricsFlag {
		runTel = experiments.NewRunTelemetry()
	}
	if *cpuproFlag != "" {
		f, err := os.Create(*cpuproFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memproFlag != "" {
		defer func() {
			f, err := os.Create(*memproFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the heap profile shows retention, not garbage
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}
	start := time.Now()
	if name == "all" {
		for _, n := range []string{"table1", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig11",
			"fig12a", "fig12b", "fig13", "fig14", "fig15", "fig16", "table3", "fig17", "fig18", "fig19", "fig20", "qos"} {
			run(n)
			fmt.Println()
		}
	} else {
		run(name)
	}
	emitTelemetry()
	fmt.Printf("\n(wall time %v)\n", time.Since(start).Round(time.Millisecond))
}

// emitTelemetry writes the -trace Chrome trace and the -metrics snapshot
// collected over the run. Experiments that don't attach the bundle (only
// fig8 and fig9 do) leave it empty; that still produces a valid, empty
// trace rather than an error.
func emitTelemetry() {
	if runTel == nil {
		return
	}
	if *traceFlag != "" {
		f, err := os.Create(*traceFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
		} else {
			events := runTel.Events()
			if err := telemetry.WriteChromeTrace(f, events); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			} else {
				fmt.Printf("\nwrote %d trace events to %s (load in chrome://tracing or ui.perfetto.dev)\n",
					len(events), *traceFlag)
			}
			f.Close()
		}
	}
	if *metricsFlag {
		snap := runTel.Snapshot()
		fmt.Println("\nmetrics snapshot:")
		if err := snap.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
		if *csvFlag != "" {
			if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
				return
			}
			f, err := os.Create(filepath.Join(*csvFlag, "metrics.csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
				return
			}
			defer f.Close()
			if err := export.Metrics(f, snap); err != nil {
				fmt.Fprintln(os.Stderr, "metrics:", err)
			}
		}
	}
}

func dur(def sim.Time) sim.Time {
	if *durFlag > 0 {
		return sim.Time(durFlag.Nanoseconds())
	}
	return def
}

// repCount merges -reps with its deprecated alias -runs.
func repCount() int {
	r := *repsFlag
	if *runsFlag > r {
		r = *runsFlag
	}
	if r < 1 {
		r = 1
	}
	return r
}

// reportErr prints a failed repetition (e.g. a captured panic) without
// aborting the rest of the sweep.
func reportErr(what string, rep int, err error) {
	fmt.Fprintf(os.Stderr, "%s rep %d failed: %v\n", what, rep, err)
}

func run(name string) {
	switch name {
	case "fig5":
		runFig5()
	case "fig6":
		runFig6()
	case "fig7a", "fig7b":
		runFig7(name)
	case "fig8":
		runFig8()
	case "fig9":
		runFig9()
	case "fig11":
		runFig11()
	case "fig12a":
		runFig12a()
	case "fig12b":
		runFig12b()
	case "fig13":
		runFig13()
	case "fig14", "fig15", "fig16":
		runFCTFigs(name)
	case "table3":
		runTable3()
	case "fig17":
		runFig17()
	case "fig18":
		runFold("fig18", experiments.Unlimited, workload.FBHadoop())
	case "fig20":
		runFold("fig20", experiments.Lossy, workload.FBHadoop())
	case "fig19":
		runFig19()
	case "qos":
		runQoS()
	case "table1":
		runTable1()
	case "faults":
		runFaultsExp()
	case "recovery":
		runRecoveryExp()
	case "rollout":
		runRollout()
	case "collective":
		runCollective()
	case "rogue":
		runRogueExp()
	case "soak":
		runSoak()
	case "scale":
		runScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		os.Exit(2)
	}
}

func runFig5() {
	fmt.Println("Fig 5: phase margin (deg) over (alpha, beta); T=40us, N=2")
	points := experiments.RunFig5()
	fmt.Printf("%10s %10s %10s\n", "alpha", "beta", "margin")
	for _, p := range points {
		fmt.Printf("%10.4f %10.4f %10.1f\n", p.Alpha, p.Beta, p.MarginDeg)
	}
}

func runFig6() {
	fmt.Println("Fig 6: stability margin for N=2 vs N=10 (alpha=0.3, beta=3)")
	for _, r := range experiments.RunFig6() {
		fmt.Printf("  N=%-3.0f margin=%6.1f deg  crossover=%8.0f Hz\n", r.N, r.MarginDeg, r.CrossoverHz)
	}
}

func runFig7(which string) {
	rows := experiments.RunFig7()
	if which == "fig7a" {
		fmt.Println("Fig 7a: phase margin (deg) vs N for six alpha:beta pairs")
	} else {
		fmt.Println("Fig 7b: loop bandwidth (Hz) vs N for six alpha:beta pairs")
	}
	var lastPair [2]float64
	for _, r := range rows {
		if [2]float64{r.Pair.Alpha, r.Pair.Beta} != lastPair {
			lastPair = [2]float64{r.Pair.Alpha, r.Pair.Beta}
			fmt.Printf("pair alpha=%.4f beta=%.4f:\n", r.Pair.Alpha, r.Pair.Beta)
		}
		if which == "fig7a" {
			fmt.Printf("  N=%-4.0f margin=%7.1f\n", r.N, r.MarginDeg)
		} else {
			fmt.Printf("  N=%-4.0f bandwidth=%9.0f\n", r.N, r.BandwidthHz)
		}
	}
	fmt.Println("auto-tuned (alpha~=0.3, beta~=3):")
	for _, r := range experiments.RunAutoTune(0.3, 3) {
		fmt.Printf("  N=%-4.0f level=%-3d margin=%6.1f bandwidth=%9.0f\n", r.N, r.Level, r.MarginDeg, r.BandwidthHz)
	}
}

func runFig8() {
	fmt.Printf("Fig 8: fairness and stability as load increases (90%% offered load, %s)\n", proto)
	reps := repCount()
	// Flatten the (B, N, rep) grid into one harness fan-out; results come
	// back slotted by cell index, so the printed order never changes.
	type point struct {
		gbps float64
		n    int
	}
	// All cells aggregate counters into the shared registry; the flight
	// recorder rides on the first cell only, so the Chrome trace shows one
	// coherent run instead of interleaved virtual clocks.
	var regOnly *experiments.RunTelemetry
	if runTel != nil {
		regOnly = &experiments.RunTelemetry{Registry: runTel.Registry}
	}
	var points []point
	var cfgs []experiments.Fig8Config
	for _, gbps := range []float64{40, 100} {
		for _, n := range []int{2, 10, 100} {
			points = append(points, point{gbps, n})
			for rep := 0; rep < reps; rep++ {
				tel := regOnly
				if len(cfgs) == 0 {
					tel = runTel
				}
				cfgs = append(cfgs, experiments.Fig8Config{
					N: n, Gbps: gbps, Duration: dur(20 * sim.Millisecond), Seed: *seedFlag + int64(rep),
					Protocol: proto, Telemetry: tel,
				})
			}
		}
	}
	rs := experiments.RunFig8Grid(cfgs, *workFlag)
	for i, pt := range points {
		var runs []experiments.Fig8Result
		for rep := 0; rep < reps; rep++ {
			r := rs[i*reps+rep]
			if r.Err != nil {
				reportErr(fmt.Sprintf("fig8 B=%.0fG N=%d", pt.gbps, pt.n), rep, r.Err)
				continue
			}
			runs = append(runs, r.Value)
		}
		if len(runs) == 0 {
			continue
		}
		queKB, rate, conv, pfc := runs[0].SteadyQueKB, runs[0].SteadyRate, runs[0].ConvergedAt, float64(runs[0].PFCFrames)
		queues, rates := []*stats.Series{runs[0].Queue}, []*stats.Series{runs[0].FairRate}
		for _, r := range runs[1:] {
			queKB += r.SteadyQueKB
			rate += r.SteadyRate
			conv += r.ConvergedAt
			pfc += float64(r.PFCFrames)
			queues = append(queues, r.Queue)
			rates = append(rates, r.FairRate)
		}
		nr := float64(len(runs))
		// RoCC's rate series is the CP fair rate (ideal B/N); baselines
		// report aggregate bottleneck throughput (ideal B).
		label, ideal := "fair", runs[0].ExpectedRate
		if proto != experiments.ProtoRoCC {
			label, ideal = "tput", pt.gbps
		}
		fmt.Printf("  B=%3.0fG N=%-3d queue=%6.0f KB (ref %s)  %s=%7.2f Gb/s (ideal %.2f)  conv=%.1f ms  pfc=%d\n",
			pt.gbps, pt.n, queKB/nr, map[float64]string{40: "150", 100: "300"}[pt.gbps],
			label, rate/nr, ideal, conv/nr*1e3, int(pfc/nr))
		emitSeries(fmt.Sprintf("fig8_B%.0f_N%d", pt.gbps, pt.n),
			experiments.AverageSeries(queues...), experiments.AverageSeries(rates...))
	}
}

func runFig9() {
	fmt.Printf("Fig 9: convergence under exponential load increase/decrease (%s)\n", proto)
	phase := dur(10 * sim.Millisecond)
	r := experiments.RunFig9(experiments.Fig9Config{Phase: phase, Seed: *seedFlag, Protocol: proto, Telemetry: runTel})
	for i := range r.PhaseN {
		// Per-flow fair share, capped by the 36 Gb/s offered load.
		ideal := 40.0 / float64(r.PhaseN[i])
		if ideal > 36 {
			ideal = 36
		}
		fmt.Printf("  phase %2d: N=%-3d fair=%7.2f Gb/s (ideal %.2f)\n", i, r.PhaseN[i], r.PhaseRates[i], ideal)
	}
	fmt.Printf("  PFC frames: %d\n", r.PFCFrames)
	emitSeries("fig9", r.Queue, r.FairRate)
}

func runFig11() {
	fmt.Println("Fig 11: comparison on N=10, B=40G (fairness / stability / convergence)")
	fmt.Printf("  %-9s %22s %16s %8s %6s\n", "protocol", "per-flow rate (Gb/s)", "queue (KB)", "util", "Jain")
	reps := repCount()
	protos := experiments.MicroProtocols()
	grid := experiments.RunFig11Grid(protos, experiments.Fig11Config{
		Duration: dur(40 * sim.Millisecond), Seed: *seedFlag,
	}, reps, *workFlag)
	for i, p := range protos {
		var rows []experiments.Fig11Row
		for _, r := range grid[i] {
			if r.Err != nil {
				reportErr("fig11 "+string(p), r.Index%reps, r.Err)
				continue
			}
			rows = append(rows, r.Value)
		}
		if len(rows) == 0 {
			continue
		}
		row := averageFig11(rows)
		fmt.Printf("  %-9s %6.2f ± %-5.2f [%4.1f..%4.1f] %7.0f ± %-6.0f %6.2f %6.4f\n",
			row.Protocol, row.FlowRateMean, row.FlowRateStd, row.FlowRateMin, row.FlowRateMax,
			row.QueueMeanKB, row.QueueStdKB, row.Utilization, row.JainIndex)
	}
}

// averageFig11 merges repetition rows: scalar metrics are averaged, the
// rate envelope takes the min of mins and max of maxes. A single row is
// returned unchanged.
func averageFig11(rows []experiments.Fig11Row) experiments.Fig11Row {
	out := rows[0]
	for _, r := range rows[1:] {
		out.FlowRateMean += r.FlowRateMean
		out.FlowRateStd += r.FlowRateStd
		out.QueueMeanKB += r.QueueMeanKB
		out.QueueStdKB += r.QueueStdKB
		out.Utilization += r.Utilization
		out.JainIndex += r.JainIndex
		if r.FlowRateMin < out.FlowRateMin {
			out.FlowRateMin = r.FlowRateMin
		}
		if r.FlowRateMax > out.FlowRateMax {
			out.FlowRateMax = r.FlowRateMax
		}
	}
	n := float64(len(rows))
	out.FlowRateMean /= n
	out.FlowRateStd /= n
	out.QueueMeanKB /= n
	out.QueueStdKB /= n
	out.Utilization /= n
	out.JainIndex /= n
	return out
}

func runFig12a() {
	fmt.Println("Fig 12a: multi-bottleneck fairness (ideal: D0=D5=5, D1..D4=8.75 Gb/s)")
	for _, p := range experiments.ComparisonProtocols() {
		r := experiments.RunFig12a(p, dur(40*sim.Millisecond), *seedFlag)
		fmt.Printf("  %-9s D0=%5.2f  D1..4=%5.2f %5.2f %5.2f %5.2f  D5=%5.2f\n",
			p, r.D[0], r.D[1], r.D[2], r.D[3], r.D[4], r.D[5])
	}
}

func runFig12b() {
	fmt.Println("Fig 12b: asymmetric-topology fairness (ideal: every flow 14.3 Gb/s)")
	for _, p := range experiments.ComparisonProtocols() {
		r := experiments.RunFig12b(p, dur(40*sim.Millisecond), *seedFlag)
		fmt.Printf("  %-9s slow(D0..D4)=%6.2f  fast(D5..D6)=%6.2f Gb/s\n", p, r.SlowAvg, r.FastAvg)
	}
}

func runFig13() {
	fmt.Println("Fig 13: testbed-twin simulation (3x10G; see cmd/rocclab for real sockets)")
	for _, sc := range []experiments.Fig13Scenario{experiments.Fig13Uniform, experiments.Fig13Mixed} {
		r := experiments.RunFig13Sim(sc, dur(100*sim.Millisecond), *seedFlag)
		want := "3.33"
		if sc == experiments.Fig13Mixed {
			want = "6.00"
		}
		fmt.Printf("  sim-%s: queue=%5.0f KB (ref 75)  fair=%5.2f Gb/s (ideal %s)\n",
			sc, r.SteadyQueKB, r.SteadyRate, want)
	}
}

func fctConfig(p experiments.Protocol, wl *workload.CDF, seed int64) experiments.FCTConfig {
	cfg := experiments.FCTConfig{
		Protocol: p,
		Workload: wl,
		Load:     *loadFlag,
		Seed:     seed,
		Shards:   shardCount(),
	}
	if *fullFlag {
		cfg.FatTree = topology.PaperFatTree()
		cfg.Duration = dur(100 * sim.Millisecond)
	} else {
		cfg.FatTree = topology.PaperFatTree()
		cfg.Duration = dur(30 * sim.Millisecond)
	}
	return cfg
}

func runFCTFigs(name string) {
	metric := map[string]string{"fig14": "average", "fig15": "90th percentile", "fig16": "99th percentile"}[name]
	reps := repCount()
	fmt.Printf("%s: %s FCT per flow-size bin (load %.0f%%)\n", name, metric, *loadFlag*100)
	for _, wl := range []*workload.CDF{workload.WebSearch(), workload.FBHadoop()} {
		fmt.Printf("-- %s traffic --\n", wl.Name())
		for _, p := range experiments.ComparisonProtocols() {
			rs := experiments.RunFCTReps(fctConfig(p, wl, *seedFlag), reps, *workFlag)
			var runs [][]stats.BinStat
			for _, r := range rs {
				if r.Err != nil {
					reportErr(name+" "+string(p), r.Index, r.Err)
					continue
				}
				runs = append(runs, r.Value.Bins)
			}
			bins, ci := experiments.MergeBins(runs)
			emitBins(name+"_"+wl.Name(), string(p), bins)
			fmt.Printf("  %-9s", p)
			for i, b := range bins {
				v := b.AvgMs
				switch name {
				case "fig15":
					v = b.P90Ms
				case "fig16":
					v = b.P99Ms
				}
				if reps > 1 {
					fmt.Printf(" %s:%.3f±%.3f", sizeLabel(b.UpperBytes), v, ci[i])
				} else {
					fmt.Printf(" %s:%.3f", sizeLabel(b.UpperBytes), v)
				}
			}
			fmt.Println()
		}
	}
}

func runTable3() {
	fmt.Printf("Table 3: flow-level average rate allocation (FB_Hadoop, load %.0f%%)\n", *loadFlag*100)
	fmt.Printf("  %-9s %14s %16s\n", "protocol", "avg rate (Mb/s)", "std dev (Mb/s)")
	reps := repCount()
	for _, p := range experiments.ComparisonProtocols() {
		rs := experiments.RunFCTReps(fctConfig(p, workload.FBHadoop(), *seedFlag), reps, *workFlag)
		var means, stds []float64
		for _, r := range rs {
			if r.Err != nil {
				reportErr("table3 "+string(p), r.Index, r.Err)
				continue
			}
			row := experiments.Table3FromResult(r.Value)
			means = append(means, row.MeanMbps)
			stds = append(stds, row.StdMbps)
		}
		if len(means) == 0 {
			continue
		}
		fmt.Printf("  %-9s %14.2f %16.2f\n", p, stats.Mean(means), stats.Mean(stds))
	}
}

func runFig17() {
	fmt.Printf("Fig 17: average queue size and PFC activation per CP tier (WebSearch, load %.0f%%)\n", *loadFlag*100)
	fmt.Printf("  %-9s %26s %26s\n", "protocol", "avg queue KB (core/in/out)", "PFC frames (core/in/out)")
	reps := repCount()
	for _, p := range experiments.ComparisonProtocols() {
		rs := experiments.RunFCTReps(fctConfig(p, workload.WebSearch(), *seedFlag), reps, *workFlag)
		var tiers [3]experiments.TierStats
		n := 0
		for _, r := range rs {
			if r.Err != nil {
				reportErr("fig17 "+string(p), r.Index, r.Err)
				continue
			}
			n++
			for t, src := range []experiments.TierStats{r.Value.Core, r.Value.IngressEdge, r.Value.EgressEdge} {
				tiers[t].AvgQueueKB += src.AvgQueueKB
				tiers[t].PFCFrames += src.PFCFrames
			}
		}
		if n == 0 {
			continue
		}
		fmt.Printf("  %-9s %8.0f /%6.0f /%6.0f %10d /%6d /%6d\n",
			p, tiers[0].AvgQueueKB/float64(n), tiers[1].AvgQueueKB/float64(n), tiers[2].AvgQueueKB/float64(n),
			tiers[0].PFCFrames/n, tiers[1].PFCFrames/n, tiers[2].PFCFrames/n)
	}
}

func runFold(name string, mode experiments.BufferMode, wl *workload.CDF) {
	label := "PFC disabled + unlimited buffer"
	if mode == experiments.Lossy {
		label = "lossy (buffer = 3x PFC threshold, go-back-N)"
	}
	fmt.Printf("%s: FCT fold increase under %s (%s, load %.0f%%, fan-in %d)\n", name, label, wl.Name(), *loadFlag*100, *fanFlag)
	reps := repCount()
	for _, p := range experiments.ComparisonProtocols() {
		cfg := fctConfig(p, wl, *seedFlag)
		cfg.IncastFanIn = *fanFlag // -fanin 30 reproduces the paper's incast level; see EXPERIMENTS.md
		rs := experiments.RunFoldReps(cfg, mode, reps, *workFlag)
		var runs []experiments.FoldResult
		for _, r := range rs {
			if r.Err != nil {
				reportErr(name+" "+string(p), r.Index, r.Err)
				continue
			}
			runs = append(runs, r.Value)
		}
		if len(runs) == 0 {
			continue
		}
		rows, ci, retxShare, bufferFold := experiments.MergeFolds(runs)
		fmt.Printf("  %-9s", p)
		for i, row := range rows {
			if row.Fold > 0 {
				if reps > 1 {
					fmt.Printf(" %s:%.1fx±%.1f", sizeLabel(row.UpperBytes), row.Fold, ci[i])
				} else {
					fmt.Printf(" %s:%.1fx", sizeLabel(row.UpperBytes), row.Fold)
				}
			}
		}
		if mode == experiments.Lossy {
			fmt.Printf("  retx=%.1f%%", retxShare*100)
		} else {
			fmt.Printf("  buffer-fold=%.1fx", bufferFold)
		}
		fmt.Println()
	}
}

func runFig19() {
	fmt.Println("Fig 19 (App A.1): baseline verification ladder N: 1->4->1")
	for _, p := range []experiments.Protocol{experiments.ProtoDCQCN, experiments.ProtoHPCC} {
		r := experiments.RunFig19(p, dur(20*sim.Millisecond), *seedFlag)
		fmt.Printf("  %-9s\n", p)
		for i := range r.PhaseN {
			fmt.Printf("    N=%d rates: %s (ideal %.1f each)\n",
				r.PhaseN[i], experiments.FormatGbps(r.PhaseRates[i]), 40.0/float64(r.PhaseN[i]))
		}
	}
}

func sizeLabel(bytes int) string {
	switch {
	case bytes >= 1000*1000:
		return fmt.Sprintf("%dM", bytes/(1000*1000))
	case bytes >= 1000:
		return fmt.Sprintf("%dK", bytes/1000)
	default:
		return fmt.Sprintf("%d", bytes)
	}
}

// runFaultsExp sweeps the robustness scenario: RoCC on the N=10 star
// with CNP loss, CNP corruption, a flapping access link and a stalled CP
// timer, reporting degradation against the fault-free baseline.
func runFaultsExp() {
	fmt.Println("faults: RoCC robustness under lost/late/corrupt feedback (N=10, B=40G)")
	base := experiments.FaultsConfig{Duration: dur(20 * sim.Millisecond), Seed: *seedFlag}
	losses := []float64{0.05, 0.10, 0.20}
	if *cnpFlag >= 0 {
		losses = []float64{*cnpFlag}
	}
	cells := experiments.FaultsCells(base, losses, sim.Time(flapFlag.Nanoseconds()))
	rs := experiments.RunFaultsGrid(cells, *workFlag)
	var ref float64 // fault-free throughput, cells[0]
	fmt.Printf("  %-20s %16s %10s %7s %7s %6s %6s\n",
		"fault", "tput Gb/s", "queue KB", "jain", "stale", "rej", "lost")
	for i, r := range rs {
		if r.Err != nil {
			reportErr("faults "+cells[i].Label(), 0, r.Err)
			continue
		}
		v := r.Value
		if i == 0 {
			ref = v.ThroughputGbps
		}
		degr := ""
		if i > 0 && ref > 0 {
			degr = fmt.Sprintf("(%+.1f%%)", (v.ThroughputGbps/ref-1)*100)
		}
		lost := v.Faults.CNPsLost + v.Faults.CNPsStalled + v.Faults.Corrupted
		fmt.Printf("  %-20s %7.2f %8s %10.1f %7.4f %7d %6d %6d\n",
			v.Config.Label(), v.ThroughputGbps, degr, v.QueueMeanKB, v.Jain,
			v.StaleRecoveries, v.CNPsRejected, lost)
	}
}

// runRecoveryExp sweeps every protocol through a hard core-link kill
// and a core-switch kill on the fat-tree, reporting goodput dip depth,
// time back to 90% of the pre-failure rate, and post-recovery fairness.
func runRecoveryExp() {
	base := experiments.RecoveryConfig{Seed: *seedFlag}
	if *durFlag > 0 {
		base.Duration = sim.Time(durFlag.Nanoseconds())
	}
	cfg := base.Filled()
	fmt.Printf("recovery: fat-tree 2x3x%d, fail %.1f ms -> restore %.1f ms (+%.0f us reconverge)\n",
		cfg.HostsPerEdge, cfg.FailAt.Seconds()*1e3, cfg.RestoreAt.Seconds()*1e3,
		netsim.DefaultReconvergeDelay.Seconds()*1e6)
	cells := experiments.RecoveryCells(base)
	rs := experiments.RunRecoveryGrid(cells, *workFlag)
	fmt.Printf("  %-8s %-7s %10s %9s %7s %9s %6s %7s %8s\n",
		"protocol", "kill", "base Gb/s", "dip Gb/s", "depth", "t90 us", "jain", "blkhole", "retx KB")
	for i, r := range rs {
		if r.Err != nil {
			reportErr(fmt.Sprintf("recovery %s/%s", cells[i].Protocol, cells[i].Kill), 0, r.Err)
			continue
		}
		v := r.Value
		t90 := "never"
		if v.T90 >= 0 {
			t90 = fmt.Sprintf("%.0f", v.T90.Seconds()*1e6)
		}
		fmt.Printf("  %-8s %-7s %10.2f %9.2f %6.1f%% %9s %6.3f %7d %8.0f\n",
			v.Config.Protocol, v.Config.Kill, v.BaselineGbps, v.DipGbps,
			v.DipDepth*100, t90, v.JainPostRecovery, v.BlackholeDrops,
			float64(v.RetxBytes)/1e3)
	}
}

// runQoS demonstrates the §8 future-work extension: class-level
// fairness via weighted fair rates.
func runQoS() {
	fmt.Println("QoS extension: 6 flows, classes gold(w=1.0) / silver(w=0.5), B=40G")
	engine := sim.New()
	star := topology.BuildStar(engine, *seedFlag, 6, netsim.Gbps(40))
	classIdx := map[netsim.FlowID]int{}
	qos.Attach(star.Net, star.Switch, star.Bottleneck, qos.Options{
		Weights:  []float64{1, 0.5},
		Classify: func(f netsim.FlowID) int { return classIdx[f] },
	})
	var flows []*netsim.Flow
	for i, src := range star.Sources {
		f := star.Net.StartFlow(src, star.Dst, netsim.FlowConfig{
			Size: -1, MaxRate: netsim.Gbps(36),
			CC: roccnet.NewFlowCC(engine, src, roccnet.RPOptions{}),
		})
		classIdx[f.ID] = i % 2
		flows = append(flows, f)
	}
	engine.RunUntil(dur(20 * sim.Millisecond))
	var shares [2]float64
	for _, f := range flows {
		shares[classIdx[f.ID]] += float64(f.DeliveredBytes()) * 8 / engine.Now().Seconds() / 1e9
	}
	fmt.Println(plot.Bars("class shares", 40, "Gb/s", []plot.Bar{
		{Label: "gold", Value: shares[0]},
		{Label: "silver", Value: shares[1]},
	}))
	fmt.Printf("ratio %.2f (ideal 2.0)\n", shares[0]/shares[1])
}

// runTable1 prints the paper's qualitative comparison of congestion
// control solutions (Table 1), with the packages implementing each row.
func runTable1() {
	fmt.Println("Table 1: comparison of selected congestion control solutions")
	fmt.Printf("  %-9s %-34s %-44s %-26s %s\n", "solution", "switch action", "source action", "destination action", "package")
	rows := [][5]string{
		{"DCTCP", "mark ECN", "adjust congestion window based on ECN", "echo ECN", "internal/dctcp"},
		{"QCN", "compute and send Fb to source", "compute rate based on Fb", "none", "internal/qcn"},
		{"DCQCN", "mark ECN", "compute rate based on CNP", "send CNP to source", "internal/dcqcn"},
		{"TIMELY", "none", "send RTT probes, compute rate from RTT", "echo RTT probes", "internal/timely"},
		{"HPCC", "inject INT", "adjust sending window based on INT", "echo INT", "internal/hpcc"},
		{"RoCC", "compute and send rate to source", "use minimum rate received from switches", "none", "internal/core"},
	}
	for _, r := range rows {
		fmt.Printf("  %-9s %-34s %-44s %-26s %s\n", r[0], r[1], r[2], r[3], r[4])
	}
}
