package main

import (
	"flag"
	"fmt"
	"os"

	"rocc/internal/experiments"
	"rocc/internal/sim"
)

var mixFlag = flag.String("mix", "", "rollout: protocol mix, e.g. rocc:0.5,dcqcn:0.5 (empty = RoCC-fraction sweep)")

// runRollout reports the incremental-rollout experiment: fractions of
// RoCC and DCQCN senders sharing one fat-tree core bottleneck, with
// per-protocol goodput, Jain fairness, and probe-flow FCT. With -mix it
// runs a single arbitrary protocol mix instead of the sweep.
func runRollout() {
	base := experiments.RolloutConfig{
		Seed:     *seedFlag,
		Duration: dur(20 * sim.Millisecond),
	}
	printHeader := func() {
		fmt.Printf("  %-9s %6s %6s %10s %8s %11s %11s\n",
			"protocol", "share", "flows", "mean Gb/s", "Jain", "FCT avg ms", "FCT p99 ms")
	}
	printRows := func(rows []experiments.RolloutRow) {
		for _, r := range rows {
			fmt.Printf("  %-9s %6.2f %6d %10.2f %8.4f %11.3f %11.3f\n",
				r.Proto, r.Share, r.Flows, r.MeanGbps, r.Jain, r.FCTMeanMs, r.FCTP99Ms)
		}
	}
	if *mixFlag != "" {
		shares, err := experiments.ParseMixSpec(*mixFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg := base
		cfg.Shares = shares
		fmt.Printf("rollout: mixed-protocol fabric (%s), 2-edge fat-tree, 2:1 oversubscribed core\n", *mixFlag)
		printHeader()
		printRows(experiments.RunRollout(cfg))
		return
	}
	fmt.Println("rollout: RoCC fraction sweep vs DCQCN, 2-edge fat-tree, 2:1 oversubscribed core")
	for _, frac := range experiments.DefaultRolloutFracs {
		cfg := base
		cfg.Shares = experiments.RoCCShares(frac)
		fmt.Printf("-- RoCC fraction %.2f --\n", frac)
		printHeader()
		printRows(experiments.RunRollout(cfg))
	}
}
