package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rocc/internal/collective"
	"rocc/internal/experiments"
	"rocc/internal/export"
	"rocc/internal/netsim"
	"rocc/internal/sim"
)

var (
	patternFlag  = flag.String("pattern", "ring", "collective: pattern (ring|tree|alltoall|ps)")
	ranksFlag    = flag.Int("ranks", 8, "collective: participant count (ps adds one server rank)")
	msgFlag      = flag.Int64("msg", 1<<20, "collective: message bytes per participant")
	chunksFlag   = flag.Int("chunks", 2, "collective: chunks the message is pipelined into")
	itersFlag    = flag.Int("iters", 4, "collective: iterations (training steps)")
	collModeFlag = flag.String("coll-mode", "", "collective: run one operating mode (hybrid|pfconly|cconly) instead of sweeping all three")
	killFlag     = flag.String("kill", "none", "collective: fault injection (none|link = kill an uplink mid-run and restore it)")
)

// runCollective sweeps a dependency-structured collective across every
// protocol × operating mode and prints the completion-time table — the
// "which stacks can you train on" headline.
func runCollective() {
	pat, err := collective.ParsePattern(*patternFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base := collective.ExpConfig{
		Collective: collective.Config{
			Pattern:      pat,
			Participants: *ranksFlag,
			MessageBytes: *msgFlag,
			Chunks:       *chunksFlag,
			Iterations:   *itersFlag,
		},
		Kill: *killFlag,
		Seed: *seedFlag,
	}
	if *durFlag > 0 {
		base.Deadline = sim.Time(durFlag.Nanoseconds())
	}
	modes := netsim.AllOperatingModes()
	if *collModeFlag != "" {
		m, err := netsim.ParseOperatingMode(*collModeFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		modes = []netsim.OperatingMode{m}
	}

	var cells []collective.ExpConfig
	for _, p := range experiments.AllProtocols() {
		for _, m := range modes {
			c := base
			c.Protocol = p
			c.Mode = m
			cells = append(cells, c)
		}
	}
	filled := base.Filled()
	fmt.Printf("collective: %s, %d ranks x %s x %d chunks, %d iters, fat-tree 2x2 (kill %s, deadline %.0f ms)\n",
		filled.Collective.Pattern, filled.Collective.Participants,
		sizeLabel(int(filled.Collective.MessageBytes)), filled.Collective.Chunks,
		filled.Collective.Iterations, filled.Kill, filled.Deadline.Seconds()*1e3)
	fmt.Println("  cell = iteration completion time p50/p99 (ms); modes that cannot finish show why")

	rs := collective.RunGrid(cells, *workFlag)

	results := make([]collective.ExpResult, 0, len(rs))
	fmt.Printf("  %-9s", "protocol")
	for _, m := range modes {
		fmt.Printf(" %-22s", m)
	}
	fmt.Println()
	for i, p := range experiments.AllProtocols() {
		fmt.Printf("  %-9s", p)
		for j := range modes {
			r := rs[i*len(modes)+j]
			if r.Err != nil {
				reportErr(fmt.Sprintf("collective %s/%s", p, modes[j]), 0, r.Err)
				fmt.Printf(" %-22s", "error")
				continue
			}
			results = append(results, r.Value)
			fmt.Printf(" %-22s", cellLabel(r.Value))
		}
		fmt.Println()
	}

	fmt.Printf("  %-9s %-8s %-9s %5s %10s %8s %10s\n",
		"protocol", "mode", "done", "drops", "pfc", "retx KB", "strag p99")
	for _, v := range results {
		done := fmt.Sprintf("%d/%d", v.Run.Completed, v.Config.Collective.Iterations)
		fmt.Printf("  %-9s %-8s %-9s %5d %10d %8.0f %8.0fus\n",
			v.Config.Protocol, v.Config.Mode, done,
			v.Drops, v.PFCFrames, float64(v.RetxBytes)/1e3, v.StragglerP99/1e3)
	}

	emitCollectiveCSV(results)
}

// cellLabel renders one table cell: p50/p99 for completed collectives,
// the failure signature otherwise.
func cellLabel(v collective.ExpResult) string {
	if v.Deadlock != "" {
		return "DEADLOCK"
	}
	if v.Stalled() {
		return fmt.Sprintf("stall@i%d/s%d", v.Run.PendingIter, v.Run.PendingStep)
	}
	return fmt.Sprintf("%.2f/%.2f", v.IterP50/1e6, v.IterP99/1e6)
}

// emitCollectiveCSV writes the sweep summary and the long-form per-step
// records into the -csv directory.
func emitCollectiveCSV(results []collective.ExpResult) {
	if *csvFlag == "" || len(results) == 0 {
		return
	}
	if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	write := func(name string, fn func(f *os.File) error) {
		f, err := os.Create(filepath.Join(*csvFlag, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
			return
		}
		defer f.Close()
		if err := fn(f); err != nil {
			fmt.Fprintln(os.Stderr, "csv:", err)
		}
	}
	write("collective.csv", func(f *os.File) error {
		return export.CollectiveSummary(f, results...)
	})
	write("collective_steps.csv", func(f *os.File) error {
		return export.CollectiveSteps(f, results...)
	})
	// One metrics snapshot per cell, long-form, reusing the registry
	// exporter: kind,name,value rows with the collective.* histograms.
	write("collective_metrics.csv", func(f *os.File) error {
		for _, v := range results {
			if _, err := fmt.Fprintf(f, "# %s %s\n", v.Config.Protocol, v.Config.Mode); err != nil {
				return err
			}
			if err := export.Metrics(f, v.Metrics); err != nil {
				return err
			}
		}
		return nil
	})
}
