package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rocc/internal/adversary"
	"rocc/internal/experiments"
	"rocc/internal/export"
	"rocc/internal/harness"
	"rocc/internal/sim"
	"rocc/internal/telemetry"
)

var rogueKindFlag = flag.String("rogue-kind", "",
	"rogue: rogue behaviour (cnpdeaf|ecnblind|blast; default cnpdeaf, adapted per protocol)")

// runRogueExp sweeps every protocol × rogue count × defense state
// through the rogue-containment benchmark: K feedback-deaf senders
// against honest victims on a shared bottleneck, with and without the
// switch-side defenses (compliance policer, PFC storm watchdog, RoCC
// forged-feedback hardening).
func runRogueExp() {
	base := experiments.RogueConfig{Seed: *seedFlag}
	if *durFlag > 0 {
		base.Duration = sim.Time(durFlag.Nanoseconds())
	}
	if *rogueKindFlag != "" {
		kind, err := adversary.ParseRogueKind(*rogueKindFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rogue:", err)
			os.Exit(2)
		}
		base.Kind = kind
	}
	cfg := base.Filled()
	fmt.Printf("rogue containment: %d victims + K %s rogues on a %.0fG star, %.0f ms, goodput over the second half\n",
		cfg.Victims, cfg.Kind, cfg.LinkRate.Gbps(), cfg.Duration.Seconds()*1e3)
	cells := experiments.RogueCells(base)
	rs := experiments.RunRogueGrid(cells, *workFlag)
	fmt.Printf("  %-8s %2s %-9s %12s %11s %6s %9s %5s %5s %7s %6s %6s\n",
		"protocol", "K", "defense", "victim Gb/s", "rogue Gb/s", "jain", "probe us", "det", "rel", "pdrops", "wtrips", "spoof")
	for i, r := range rs {
		if r.Err != nil {
			reportErr(fmt.Sprintf("rogue %s/K=%d", cells[i].Protocol, cells[i].Rogues), 0, r.Err)
			continue
		}
		v := r.Value
		def := "off"
		if v.Config.Defended {
			def = "on"
		}
		probe := "never"
		if v.ProbeFCT >= 0 {
			probe = fmt.Sprintf("%.0f", v.ProbeFCT.Seconds()*1e6)
		}
		fmt.Printf("  %-8s %2d %-9s %12.2f %11.2f %6.3f %9s %5d %5d %7d %6d %6d\n",
			v.Config.Protocol, v.Config.Rogues, def, v.VictimGbps, v.RogueGbps,
			v.JainVictims, probe, v.Detections, v.Releases, v.PolicedDrops,
			v.WatchdogTrips, v.SpoofRejects)
	}
	writeRogueMetrics(cells, rs)
}

// writeRogueMetrics exports the sweep as rogue_metrics.csv when -csv is
// set: one gauge per cell metric, named rogue.<proto>.k<K>.<def>.<what>.
func writeRogueMetrics(cells []experiments.RogueConfig, rs []harness.Result[experiments.RogueResult]) {
	if *csvFlag == "" {
		return
	}
	reg := telemetry.New()
	for i, r := range rs {
		if r.Err != nil {
			continue
		}
		v := r.Value
		def := "undefended"
		if v.Config.Defended {
			def = "defended"
		}
		prefix := fmt.Sprintf("rogue.%s.k%d.%s.", cells[i].Protocol, cells[i].Rogues, def)
		for _, m := range []struct {
			name  string
			value float64
		}{
			{"victim_gbps", v.VictimGbps},
			{"rogue_gbps", v.RogueGbps},
			{"jain_victims", v.JainVictims},
			{"probe_fct_us", v.ProbeFCT.Seconds() * 1e6},
			{"detections", float64(v.Detections)},
			{"releases", float64(v.Releases)},
			{"quarantined", float64(v.Quarantined)},
			{"policed_drops", float64(v.PolicedDrops)},
			{"watchdog_trips", float64(v.WatchdogTrips)},
			{"spoof_rejects", float64(v.SpoofRejects)},
		} {
			val := m.value
			reg.GaugeFunc(prefix+m.name, func() float64 { return val })
		}
	}
	if err := os.MkdirAll(*csvFlag, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	f, err := os.Create(filepath.Join(*csvFlag, "rogue_metrics.csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
		return
	}
	defer f.Close()
	if err := export.Metrics(f, reg.Snapshot()); err != nil {
		fmt.Fprintln(os.Stderr, "csv:", err)
	}
}
