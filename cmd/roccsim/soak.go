package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rocc/internal/chaos"
)

var (
	countFlag     = flag.Int("count", 0, "soak: number of scenarios (0 = until -budget, or 100)")
	budgetFlag    = flag.Duration("budget", 0, "soak: wall-clock budget (0 = unlimited)")
	soakOutFlag   = flag.String("soak-out", "", "soak: directory for minimized repros (config JSON + Chrome trace)")
	shrinkFlag    = flag.Bool("shrink", true, "soak: minimize failing scenarios with delta debugging")
	faultFlag     = flag.Float64("fault-scale", 1, "soak: fault intensity (1 = default mix, 0 = clean scenarios)")
	mixProbFlag   = flag.Float64("mix-prob", 0.25, "soak: probability a scenario mixes two protocols on one fabric")
	failProbFlag  = flag.Float64("fail-prob", 0, "soak: probability a scenario carries a topology kill (link/switch failure + restore)")
	modeProbFlag  = flag.Float64("mode-prob", 0.25, "soak: probability a scenario runs in a non-default operating mode (pfconly or cconly)")
	rogueProbFlag = flag.Float64("rogue-prob", 0, "soak: probability a scenario hosts rogue senders policed by the switch-side defenses")
)

// runSoak drives the chaos subsystem: generate scenarios from the
// campaign seed, run each under the invariant monitors on the worker
// pool, and shrink + persist any failures.
func runSoak() {
	gen := chaos.GenOptions{FaultScale: *faultFlag, MixProb: *mixProbFlag, FailProb: *failProbFlag, ModeProb: *modeProbFlag, RogueProb: *rogueProbFlag}
	if *faultFlag == 0 {
		gen.FaultScale = -1 // explicit clean mode (0 means "default" in GenOptions)
	}
	fmt.Printf("soak: randomized chaos scenarios (seed %d, fault scale %g, mix prob %g, fail prob %g, mode prob %g, rogue prob %g)\n",
		*seedFlag, *faultFlag, *mixProbFlag, *failProbFlag, *modeProbFlag, *rogueProbFlag)
	opts := chaos.SoakOptions{
		Seed:    *seedFlag,
		Count:   *countFlag,
		Budget:  *budgetFlag,
		Workers: *workFlag,
		Gen:     gen,
		Run:     chaos.RunOptions{Shards: shardCount()},
		Shrink:  *shrinkFlag,
		OutDir:  *soakOutFlag,
		OnScenario: func(v chaos.Verdict) {
			status := "ok"
			if v.Err != "" {
				status = "ERROR " + v.Err
			} else if len(v.Result.Violations) > 0 {
				status = fmt.Sprintf("VIOLATED %s at %.3f ms (%s)",
					v.Result.Violations[0].Invariant,
					float64(v.Result.Violations[0].AtNs)/1e6,
					v.Result.Violations[0].Detail)
			}
			rogues := ""
			if v.Rogues > 0 {
				rogues = fmt.Sprintf(" rogues=%d", v.Rogues)
			}
			fmt.Printf("  #%-4d seed=%-6d %-14s %-16s %-8s flows=%-3d faults=%-2d%s %s\n",
				v.Index, v.Seed, v.ProtocolLabel(), v.Topology, v.ModeLabel(), v.Flows, v.Faults, rogues, status)
		},
	}
	start := time.Now()
	rep := chaos.Soak(opts)
	fmt.Printf("soak: %d scenarios (%d mixed-protocol, %d non-default mode, %d rogue-laden), %d failures (%v)\n",
		rep.Scenarios, rep.Mixed, rep.Moded, rep.Rogued, rep.Failures, time.Since(start).Round(time.Millisecond))
	for _, r := range rep.Repros {
		o, m := r.Shrink.Original, r.Shrink.Minimized
		fmt.Printf("  repro seed=%d invariant=%s: %d flows/%d faults -> %d flows/%d faults in %d runs",
			r.Seed, r.Invariant, len(o.Flows), len(o.Faults), len(m.Flows), len(m.Faults), r.Shrink.Runs)
		if r.ConfigPath != "" {
			fmt.Printf("  (%s, %s)", r.ConfigPath, r.TracePath)
		}
		fmt.Println()
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}
