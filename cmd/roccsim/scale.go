package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"rocc/internal/experiments"
	"rocc/internal/sim"
)

var (
	shardsFlag = flag.Int("shards", -1, "engine shards for fat-tree runs (fig14-18, table3, soak, scale): "+
		"-1 = auto (GOMAXPROCS pods on a multi-core machine, legacy single loop on one core), "+
		"0 = legacy single event loop, N = pod-aligned sharded group (results identical for every N >= 1)")
	flowsFlag    = flag.Int("flows", 100_000, "scale: concurrent persistent flows on the k=16 fat-tree")
	benchOutFlag = flag.String("bench-out", "BENCH_10.json", "scale: path for the scaling-bench JSON report")
)

// shardCount resolves -shards. Auto picks the parallel engine only when
// the machine can actually run shards in parallel; paper-figure baselines
// recorded on single-core runners therefore keep the legacy event order,
// while multi-core runs shard by default (any shard count >= 1 produces
// identical output, so auto never makes results machine-dependent beyond
// the one legacy/sharded split).
func shardCount() int {
	if *shardsFlag >= 0 {
		return *shardsFlag
	}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		return p
	}
	return 0
}

// scaleReport is the BENCH_10.json schema: the sweep rows plus the
// context a reader needs to judge the speedup honestly.
type scaleReport struct {
	Bench      string                         `json:"bench"`
	CPUs       int                            `json:"cpus"`
	GOMAXPROCS int                            `json:"gomaxprocs"`
	Hosts      int                            `json:"hosts"`
	Flows      int                            `json:"flows"`
	VirtualMS  float64                        `json:"virtual_ms"`
	Results    []experiments.ScaleBenchResult `json:"results"`
	Speedup8x  float64                        `json:"speedup_8_over_1"`
	Identical  bool                           `json:"digests_identical"`
	Note       string                         `json:"note,omitempty"`
}

// runScale sweeps the k=16 fat-tree (1024 hosts, -flows concurrent
// flows) across shards 1/2/4/8, checks the end-state digests match, and
// writes BENCH_10.json.
func runScale() {
	fmt.Printf("scale: k=16 fat-tree engine-scaling bench (1024 hosts, %d flows, %d CPUs, GOMAXPROCS %d)\n",
		*flowsFlag, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	fmt.Printf("  %-7s %12s %10s %14s %8s\n", "shards", "events", "wall s", "events/sec", "digest")
	var results []experiments.ScaleBenchResult
	for _, k := range []int{1, 2, 4, 8} {
		r := experiments.RunScaleBench(experiments.ScaleBenchConfig{
			Shards:   k,
			Seed:     *seedFlag,
			Protocol: proto,
			Flows:    *flowsFlag,
			Duration: dur(sim.Millisecond),
		})
		results = append(results, r)
		fmt.Printf("  %-7d %12d %10.2f %14.0f %8s\n", r.Shards, r.Events, r.WallSec, r.EventsPerSec, r.Digest[:8])
	}

	rep := scaleReport{
		Bench:      "k16-fattree-shard-scaling",
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Hosts:      results[0].Hosts,
		Flows:      results[0].Flows,
		VirtualMS:  results[0].VirtualMS,
		Results:    results,
		Speedup8x:  results[0].WallSec / results[len(results)-1].WallSec,
		Identical:  true,
	}
	for _, r := range results[1:] {
		if r.Digest != results[0].Digest {
			rep.Identical = false
		}
	}
	if rep.CPUs < 8 {
		rep.Note = fmt.Sprintf("measured on %d CPU(s): shard workers time-slice one core, so wall-clock "+
			"speedup reflects synchronization overhead, not parallelism; the >=3x target needs >=8 cores", rep.CPUs)
	}
	fmt.Printf("  speedup 8/1: %.2fx   digests identical: %v\n", rep.Speedup8x, rep.Identical)
	if rep.Note != "" {
		fmt.Println("  note:", rep.Note)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*benchOutFlag, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", *benchOutFlag)
	if !rep.Identical {
		os.Exit(1)
	}
}
