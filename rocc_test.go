package rocc_test

import (
	"math"
	"testing"

	"rocc"
)

// TestQuickstart exercises the public facade end to end, mirroring the
// README quick-start: build a star, enable RoCC, run, verify fairness.
func TestQuickstart(t *testing.T) {
	engine := rocc.NewEngine()
	star := rocc.BuildStar(engine, 1, 4, rocc.Gbps(40))
	stack := rocc.NewStack(star.Net, rocc.ProtoRoCC, 0)
	stack.EnablePort(star.Bottleneck)
	var flows []*rocc.Flow
	for _, src := range star.Sources {
		flows = append(flows, stack.StartFlow(src, star.Dst, -1, rocc.Gbps(36)))
	}
	engine.RunUntil(15 * rocc.Millisecond)

	cp := stack.CPs[star.Bottleneck]
	if got := cp.FairRateMbps() / 1000; math.Abs(got-10) > 1 {
		t.Errorf("fair rate %.2f Gb/s, want ~10", got)
	}
	for i, f := range flows {
		gbps := float64(f.DeliveredBytes()) * 8 / engine.Now().Seconds() / 1e9
		if gbps < 7 {
			t.Errorf("flow %d at %.1f Gb/s, want near fair share", i, gbps)
		}
	}
}

func TestPureAlgorithmAPI(t *testing.T) {
	cp := rocc.NewCP(rocc.CPConfig40G())
	for i := 0; i < 10; i++ {
		cp.Update(150_000)
	}
	rp := rocc.NewRP(rocc.RPConfig{DeltaFMbps: 10, RmaxMbps: 40000})
	if !rp.ProcessCNP(cp.FairRateUnits(), rocc.CPKey{Node: 1}) {
		t.Error("first CNP rejected")
	}
	if rp.RateMbps() <= 0 {
		t.Error("no rate installed")
	}
}

func TestControlSystemAPI(t *testing.T) {
	s := rocc.ControlSystem{Alpha: 0.0093, Beta: 0.0937, N: 64, T: 40e-6}
	if pm := s.PhaseMarginDeg(); pm < 20 {
		t.Errorf("phase margin %.1f, want the paper's >20", pm)
	}
}

func TestWorkloadAPI(t *testing.T) {
	if rocc.WebSearch().MeanBytes() <= rocc.FBHadoop().MeanBytes() {
		t.Error("WebSearch should be heavier than FB_Hadoop")
	}
}

func TestTopologiesViaFacade(t *testing.T) {
	engine := rocc.NewEngine()
	if m := rocc.BuildMultiBottleneck(engine, 1); len(m.A) != 5 {
		t.Error("multi-bottleneck shape")
	}
	if a := rocc.BuildAsymmetric(rocc.NewEngine(), 1); len(a.Fast) != 2 {
		t.Error("asymmetric shape")
	}
	ft := rocc.BuildFatTree(rocc.NewEngine(), 1, rocc.PaperFatTree())
	if len(ft.Hosts[0]) != 30 {
		t.Error("fat-tree shape")
	}
}

func TestFacadeConstructors(t *testing.T) {
	if rocc.CPConfigForGbps(25).FmaxMbps != 25000 {
		t.Error("CPConfigForGbps")
	}
	if rocc.CPConfig100G().QrefBytes != 300000 {
		t.Error("CPConfig100G")
	}
	if rocc.Mbps(10) != rocc.Rate(10e6) {
		t.Error("Mbps")
	}
	engine := rocc.NewEngine()
	net := rocc.NewNetwork(engine, 1)
	sw := net.AddSwitch("s", rocc.BufferConfig{})
	a := net.AddHost("a")
	b := net.AddHost("b")
	net.Connect(a, sw, rocc.Gbps(40), 1500*rocc.Nanosecond)
	port, _ := net.Connect(sw, b, rocc.Gbps(40), 1500*rocc.Nanosecond)
	net.ComputeRoutes()
	cp := rocc.EnableRoCC(net, sw, port, rocc.CPOptions{})
	cc := rocc.NewRoCCFlowCC(engine, a, rocc.RPOptions{})
	net.StartFlow(a, b, rocc.FlowConfig{Size: -1, MaxRate: rocc.Gbps(36), CC: cc})
	engine.RunUntil(5 * rocc.Millisecond)
	if cp.FairRateMbps() <= 0 {
		t.Error("EnableRoCC CP inert")
	}
}
