// Quickstart: build a 4-source single-bottleneck network, enable RoCC on
// the congested egress port, and watch the fair rate and queue converge.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"rocc"
)

func main() {
	engine := rocc.NewEngine()

	// A star: 4 sources and 1 destination on 40 Gb/s links; the switch
	// egress toward the destination is the bottleneck.
	star := rocc.BuildStar(engine, 1, 4, rocc.Gbps(40))

	// Wire the RoCC protocol stack: the congestion point on the
	// bottleneck port, a reaction point per flow.
	stack := rocc.NewStack(star.Net, rocc.ProtoRoCC, 0)
	stack.EnablePort(star.Bottleneck)
	for _, src := range star.Sources {
		// Persistent flows offering 90% of the link rate each: 4x36 Gb/s
		// into a 40 Gb/s bottleneck.
		stack.StartFlow(src, star.Dst, -1, rocc.Gbps(36))
	}

	cp := stack.CPs[star.Bottleneck]
	fmt.Println("t(ms)  fair-rate(Gb/s)  queue(KB)   [ideal: 10 Gb/s, 150 KB]")
	for t := rocc.Millisecond; t <= 15*rocc.Millisecond; t += rocc.Millisecond {
		engine.RunUntil(t)
		fmt.Printf("%5.0f  %15.2f  %9.0f\n",
			t.Millis(), cp.FairRateMbps()/1000,
			float64(star.Bottleneck.DataQueueBytes())/1000)
	}
	fmt.Printf("\nPFC pause frames: %d (stable queues make PFC unnecessary)\n",
		star.Net.TotalPFCFrames())
}
