// Multibottleneck: the Fig. 10/12a scenario. Flow D0 crosses two
// congestion points; with max-min fairness it should get 5 Gb/s (the
// share of the most congested hop), leaving D1..D4 8.75 Gb/s each.
// RoCC's multi-CP feedback rule achieves this; DCQCN and HPCC shortchange
// the multi-bottleneck flow.
//
//	go run ./examples/multibottleneck
package main

import (
	"fmt"

	"rocc"
	"rocc/internal/experiments"
)

func main() {
	fmt.Println("Fig. 12a: per-flow throughput on the multi-bottleneck topology")
	fmt.Println("ideal: D0 = D5 = 5 Gb/s, D1..D4 = 8.75 Gb/s")
	fmt.Println()
	fmt.Printf("%-9s %6s %6s %6s %6s %6s %6s\n", "protocol", "D0", "D1", "D2", "D3", "D4", "D5")
	for _, p := range []rocc.Protocol{rocc.ProtoDCQCN, rocc.ProtoHPCC, rocc.ProtoRoCC} {
		r := experiments.RunFig12a(p, 40*rocc.Millisecond, 1)
		fmt.Printf("%-9s %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			p, r.D[0], r.D[1], r.D[2], r.D[3], r.D[4], r.D[5])
	}
	fmt.Println("\nD0 traverses both the 40G inter-switch link and the 10G access")
	fmt.Println("link; only RoCC gives it the full fair share of the tighter hop.")
}
