// Testbed: run the RoCC congestion point and reaction points over real
// UDP sockets on loopback — the analog of the paper's DPDK evaluation
// (§6.2, Fig. 13). A software switch drains at 400 Mb/s; three clients
// offer full line rate; the fair rate should settle near 133 Mb/s each
// with the queue near the 75 KB reference.
//
//	go run ./examples/testbed
package main

import (
	"fmt"
	"time"

	"rocc/internal/testbed"
)

func main() {
	cfg := testbed.DefaultConfig()
	fmt.Printf("software switch: %.0f Mb/s drain, T=%v, Qref=%d KB\n",
		cfg.DrainRate/1e6, cfg.T, cfg.CP.QrefBytes/1000)
	fmt.Println("running the uniform scenario for 4s of real time...")

	res, err := testbed.Run(cfg, testbed.Uniform, 4*time.Second)
	if err != nil {
		fmt.Println("testbed error:", err)
		return
	}
	fmt.Println(res)
	fmt.Printf("ideal: %.1f Mb/s per client, %d KB queue\n",
		cfg.DrainRate/3/1e6, cfg.CP.QrefBytes/1000)
	fmt.Println("\nqueue trace (20 ms samples, KB):")
	for i, p := range res.Queue.Points {
		if i%10 == 0 {
			fmt.Printf("  t=%4.1fs q=%5.0f KB  F=%6.1f Mb/s\n",
				p.T, p.V, res.FairRate.Points[i].V)
		}
	}
}
