// QoS: the paper's §8 future-work extension — class-level fairness.
// Six flows share one 40 Gb/s bottleneck; gold-class flows carry weight
// 1.0 and silver-class flows 0.5, so the classes split the link 2:1
// while flows within each class remain max-min fair.
//
//	go run ./examples/qos
package main

import (
	"fmt"

	"rocc"
	"rocc/internal/qos"
	"rocc/internal/roccnet"
)

func main() {
	engine := rocc.NewEngine()
	star := rocc.BuildStar(engine, 1, 6, rocc.Gbps(40))

	classNames := map[int]string{0: "gold", 1: "silver"}
	classIdx := map[rocc.FlowID]int{}

	qos.Attach(star.Net, star.Switch, star.Bottleneck, qos.Options{
		Weights:  []float64{1, 0.5},
		Classify: func(f rocc.FlowID) int { return classIdx[f] },
	})

	var flows []*rocc.Flow
	for i, src := range star.Sources {
		f := star.Net.StartFlow(src, star.Dst, rocc.FlowConfig{
			Size: -1, MaxRate: rocc.Gbps(36),
			CC: roccnet.NewFlowCC(engine, src, roccnet.RPOptions{}),
		})
		classIdx[f.ID] = i % 2
		flows = append(flows, f)
	}
	engine.RunUntil(20 * rocc.Millisecond)

	var shares [2]float64
	fmt.Println("flow  class   goodput")
	for _, f := range flows {
		g := float64(f.DeliveredBytes()) * 8 / engine.Now().Seconds() / 1e9
		c := classIdx[f.ID]
		shares[c] += g
		fmt.Printf("%4d  %-6s %6.2f Gb/s\n", f.ID, classNames[c], g)
	}
	fmt.Printf("\nclass totals: gold %.1f Gb/s, silver %.1f Gb/s (ratio %.2f, want 2.0)\n",
		shares[0], shares[1], shares[0]/shares[1])
}
