// Incast: reproduce the Fig. 9 convergence experiment — the number of
// flows into one bottleneck doubles every phase from 3 to 100 and then
// halves back, while RoCC's fair rate tracks the ideal share.
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"rocc/internal/experiments"
	"rocc/internal/sim"
)

func main() {
	fmt.Println("Fig. 9: exponential load increase and decrease (B = 40 Gb/s)")
	r := experiments.RunFig9(experiments.Fig9Config{
		Phase: 10 * sim.Millisecond,
		Seed:  1,
	})
	fmt.Println("phase   N   fair rate   ideal")
	for i := range r.PhaseN {
		n := r.PhaseN[i]
		ideal := 40.0 / float64(n)
		if offered := 36.0; float64(n)*offered < 40 {
			ideal = offered
		}
		fmt.Printf("%5d %4d %8.2f G %6.2f G\n", i, n, r.PhaseRates[i], ideal)
	}
	fmt.Printf("\nPFC frames over the whole run: %d\n", r.PFCFrames)
	fmt.Println("Queue and rate series are available on the result for plotting.")
}
